/**
 * @file
 * Segmented recency stacks and the bias-free global history register
 * (BF-GHR) of the BF-TAGE predictor (Sec. V-B, Fig. 7).
 *
 * A monolithic recency stack deep enough to cover 2000 branches is
 * not implementable (associative search), so BF-TAGE divides the
 * long unfiltered history into non-overlapping segments whose sizes
 * form a geometric series; each segment is covered by a small
 * (8-entry) RS that keeps a single instance per hashed address.
 *
 * Mechanics (Sec. V-B4): every committed branch enters a queue
 * (GHR_unfiltered) carrying its hashed address, outcome, and bias
 * status at commit. As commits push it deeper, it crosses segment
 * boundaries; at each crossing, if it was non-biased, it is inserted
 * into that segment's RS (evicting any entry with the same hash) and
 * pruned from the previous one.
 *
 * The BF-GHR materialized for indexing is: the newest
 * `unfilteredBits` raw outcomes, followed by each segment's RS
 * outcomes in recency order (padded to the segment's capacity so bit
 * positions stay stable) — about 144 bits covering 2048 branches of
 * real history.
 */

#ifndef BFBP_CORE_SEGMENTED_RS_HPP
#define BFBP_CORE_SEGMENTED_RS_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/state_codec.hpp"
#include "util/storage.hpp"

namespace bfbp
{

/** Builds and maintains the BF-GHR from segmented recency stacks. */
class SegmentedRecencyStacks
{
  public:
    /** Geometry of the segmentation. */
    struct Config
    {
        //! Segment boundaries (depths in the unfiltered history);
        //! segment k covers [boundaries[k], boundaries[k+1]).
        std::vector<unsigned> boundaries = {
            16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512,
            768, 1024, 1280, 1536, 2048};
        unsigned perSegment = 8;   //!< RS entries per segment.
        unsigned unfilteredBits = 16; //!< Raw recent outcome window.
        unsigned addrHashBits = 14;
    };

    /** Maximum BF-GHR bits supported by the materialized buffer. */
    static constexpr size_t maxGhrBits = 256;

    SegmentedRecencyStacks();
    explicit SegmentedRecencyStacks(Config config);

    /** Records a committed conditional branch. */
    void commit(uint64_t addr_hash, bool taken, bool non_biased);

    /** Total BF-GHR length in bits (fixed by the geometry). */
    size_t ghrBits() const { return totalBits; }

    /** BF-GHR bit @p i (0 = most recent position). */
    bool
    ghrBit(size_t i) const
    {
        return (words[i / 64] >> (i % 64)) & 1;
    }

    /**
     * Folds the first @p length BF-GHR bits into @p width bits:
     * XOR of bit i shifted to position (i mod width).
     */
    uint64_t fold(unsigned length, unsigned width) const;

    /** Number of live entries in segment @p k (tests/analysis). */
    size_t segmentSize(size_t k) const { return segments[k].size(); }

    size_t numSegments() const { return segments.size(); }

    /** Segment-RS churn event counts since construction. */
    struct ChurnCounts
    {
        uint64_t inserts = 0;   //!< Boundary-crossing insertions.
        uint64_t evictions = 0; //!< Same-address entry replaced.
        uint64_t overflows = 0; //!< Oldest entry pushed out by
                                //!< capacity.
        uint64_t prunes = 0;    //!< Entries aged past the segment's
                                //!< deep edge.
    };

    const ChurnCounts &churn() const { return churnCounts; }

    StorageReport storage() const;

    void saveState(StateSink &sink) const;

    /** Restores queue, segments and churn counts, then rebuilds the
     *  materialized BF-GHR words from them. */
    void loadState(StateSource &source);

  private:
    /** One queued unfiltered-history record. */
    struct QueueEntry
    {
        uint16_t addrHash = 0;
        bool outcome = false;
        bool nonBiased = false;
    };

    /** One segment-RS entry. */
    struct SegEntry
    {
        uint16_t addrHash = 0;
        bool outcome = false;
        uint64_t absIndex = 0; //!< Commit counter at its occurrence.
    };

    void rematerialize();

    Config cfg;
    RingBuffer<QueueEntry> queue;
    std::vector<std::vector<SegEntry>> segments; //!< Front = newest.
    ChurnCounts churnCounts;
    size_t totalBits;
    std::array<uint64_t, maxGhrBits / 64> words{};
};

} // namespace bfbp

#endif // BFBP_CORE_SEGMENTED_RS_HPP
