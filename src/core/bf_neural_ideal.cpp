#include "core/bf_neural_ideal.hpp"

#include <cassert>
#include <cstdlib>

#include "util/bitops.hpp"
#include "util/errors.hpp"
#include "util/hashing.hpp"

namespace bfbp
{

void
BfNeuralIdealConfig::validate() const
{
    const std::string where = "BfNeuralIdealConfig(" + label + ")";
    // Context::index/bit are fixed 128-entry arrays.
    configRange(historyDepth, 1u, 128u, where + ".historyDepth");
    configRange(wmRows, 1u, 1u << 24, where + ".wmRows");
    configRange(logBias, 1u, 28u, where + ".logBias");
    configRange(weightBits, 2u, 16u, where + ".weightBits");
    configRange(biasWeightBits, 2u, 16u, where + ".biasWeightBits");
    configRange(bstLogEntries, 1u, 28u, where + ".bstLogEntries");
    configRange(addrHashBits, 1u, 16u, where + ".addrHashBits");
    configRange<uint64_t>(maxPosDistance, 1, uint64_t{1} << 20,
                          where + ".maxPosDistance");
}

BfNeuralIdealPredictor::BfNeuralIdealPredictor(BfNeuralIdealConfig config)
    : cfg((config.validate(), std::move(config))),
      bst(cfg.bstLogEntries),
      rs(cfg.historyDepth, true),
      threshold(perceptronTheta(cfg.historyDepth) / 2),
      wb(size_t{1} << cfg.logBias, SignedSatCounter(cfg.biasWeightBits)),
      wm(size_t{cfg.wmRows} * cfg.historyDepth,
         SignedSatCounter(cfg.weightBits))
{
}

BiasState
BfNeuralIdealPredictor::classify(uint64_t pc) const
{
    return cfg.oracle ? cfg.oracle->classify(pc) : bst.lookup(pc);
}

void
BfNeuralIdealPredictor::compute(uint64_t pc, Context &ctx) const
{
    ctx.biasIndex = hashPc(pc, cfg.logBias);
    int sum = 2 * wb[ctx.biasIndex].value();

    // Algorithm 1: row from (pc, A[i], P[i]); column is the RS
    // depth i itself.
    ctx.count = static_cast<unsigned>(rs.size());
    for (unsigned i = 0; i < ctx.count; ++i) {
        const RecencyStack::Entry &e = rs.at(i);
        uint64_t dist = commitCount - e.insertAge;
        if (dist > cfg.maxPosDistance)
            dist = cfg.maxPosDistance;
        const uint32_t row = static_cast<uint32_t>(
            hashMany({pc >> 1, e.addrHash, dist}) % cfg.wmRows);
        const uint32_t idx = row * cfg.historyDepth + i;
        ctx.index[i] = idx;
        ctx.bit[i] = e.outcome;
        const int w = wm[idx].value();
        sum += e.outcome ? w : -w;
    }
    ctx.sum = sum;
    ctx.neuralPred = sum >= 0;
}

bool
BfNeuralIdealPredictor::predict(uint64_t pc)
{
    Context ctx;
    ctx.pc = pc;
    ctx.state = classify(pc);
    compute(pc, ctx);

    bool pred;
    switch (ctx.state) {
      case BiasState::Taken:
        pred = true;
        break;
      case BiasState::NotTaken:
        pred = false;
        break;
      case BiasState::NotFound:
        pred = true;
        break;
      case BiasState::NonBiased:
      default:
        pred = ctx.neuralPred;
        break;
    }
    pending.push_back(ctx);
    return pred;
}

void
BfNeuralIdealPredictor::update(uint64_t pc, bool taken, bool predicted,
                               uint64_t target)
{
    (void)predicted;
    (void)target;
    assert(!pending.empty());
    Context ctx = pending.front();
    pending.pop_front();
    assert(ctx.pc == pc);

    const BiasState before =
        cfg.oracle ? ctx.state : bst.train(pc, taken);
    const bool neuralMispredict = ctx.neuralPred != taken;

    const bool becameNonBiased =
        (before == BiasState::Taken && !taken) ||
        (before == BiasState::NotTaken && taken);
    if (before == BiasState::NonBiased || becameNonBiased) {
        if (becameNonBiased || neuralMispredict ||
            std::abs(ctx.sum) < threshold.value()) {
            wb[ctx.biasIndex].add(taken ? 1 : -1);
            for (unsigned i = 0; i < ctx.count; ++i)
                wm[ctx.index[i]].add(ctx.bit[i] == taken ? 1 : -1);
        }
        if (before == BiasState::NonBiased)
            threshold.observe(neuralMispredict, std::abs(ctx.sum));
    }

    ++commitCount;
    const BiasState after = cfg.oracle ? ctx.state : bst.lookup(pc);
    if (after == BiasState::NonBiased) {
        rs.push(static_cast<uint16_t>(hashPc(pc, cfg.addrHashBits)),
                taken, commitCount);
    }
}

StorageReport
BfNeuralIdealPredictor::storage() const
{
    StorageReport report(name());
    report.merge(bst.storage());
    report.addTable("Wb bias weights", wb.size(), cfg.biasWeightBits);
    report.addTable("Wm 2-D weights (" + std::to_string(cfg.wmRows) +
                        "x" + std::to_string(cfg.historyDepth) + ")",
                    wm.size(), cfg.weightBits);
    report.merge(rs.storage());
    return report;
}

void
BfNeuralIdealPredictor::saveStateBody(StateSink &sink) const
{
    bst.saveState(sink);
    rs.saveState(sink);
    threshold.saveState(sink);
    sink.u64(wb.size());
    for (const auto &w : wb)
        w.saveState(sink);
    sink.u64(wm.size());
    for (const auto &w : wm)
        w.saveState(sink);
    sink.u64(commitCount);
    sink.u64(pending.size());
    for (const Context &ctx : pending) {
        sink.u64(ctx.pc);
        sink.u8(static_cast<uint8_t>(ctx.state));
        sink.boolean(ctx.neuralPred);
        sink.i32(ctx.sum);
        sink.u64(ctx.biasIndex);
        sink.u32(ctx.count);
        for (unsigned i = 0; i < ctx.count; ++i) {
            sink.u32(ctx.index[i]);
            sink.boolean(ctx.bit[i]);
        }
    }
}

void
BfNeuralIdealPredictor::loadStateBody(StateSource &source)
{
    bst.loadState(source);
    rs.loadState(source);
    threshold.loadState(source);
    const uint64_t nWb = source.count(wb.size(), "Wb weight");
    if (nWb != wb.size())
        throw TraceIoError("snapshot corrupt: Wb table size mismatch");
    for (auto &w : wb)
        w.loadState(source);
    const uint64_t nWm = source.count(wm.size(), "Wm weight");
    if (nWm != wm.size())
        throw TraceIoError("snapshot corrupt: Wm table size mismatch");
    for (auto &w : wm)
        w.loadState(source);
    commitCount = source.u64();
    const uint64_t nPending =
        source.count(uint64_t{1} << 16, "pending context");
    pending.clear();
    for (uint64_t i = 0; i < nPending; ++i) {
        Context ctx;
        ctx.pc = source.u64();
        const uint8_t state = source.u8();
        loadRange(state, uint8_t{0}, uint8_t{3}, "context bias state");
        ctx.state = static_cast<BiasState>(state);
        ctx.neuralPred = source.boolean();
        ctx.sum = source.i32();
        ctx.biasIndex = source.u64();
        loadRange<uint64_t>(ctx.biasIndex, 0, wb.size() - 1,
                            "context bias index");
        ctx.count = source.u32();
        loadRange<uint64_t>(ctx.count, 0, 128, "context term count");
        for (unsigned k = 0; k < ctx.count; ++k) {
            ctx.index[k] = source.u32();
            if (ctx.index[k] >= wm.size()) {
                throw TraceIoError("snapshot corrupt: context weight "
                                   "index beyond table");
            }
            ctx.bit[k] = source.boolean();
        }
        pending.push_back(ctx);
    }
}

} // namespace bfbp
