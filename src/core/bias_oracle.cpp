#include "core/bias_oracle.hpp"

namespace bfbp
{

BiasOracle
BiasOracle::profile(TraceSource &source)
{
    BiasOracle oracle;
    BranchRecord record;
    while (source.next(record)) {
        if (record.isConditional())
            oracle.observe(record.pc, record.taken);
    }
    return oracle;
}

double
BiasOracle::dynamicBiasedFraction() const
{
    uint64_t total = 0;
    uint64_t biasedDynamic = 0;
    for (const auto &[pc, p] : profiles) {
        total += p.executions;
        if (p.biased())
            biasedDynamic += p.executions;
    }
    return total == 0 ? 0.0
        : static_cast<double>(biasedDynamic) / static_cast<double>(total);
}

double
BiasOracle::staticBiasedFraction() const
{
    if (profiles.empty())
        return 0.0;
    uint64_t biased = 0;
    for (const auto &[pc, p] : profiles) {
        if (p.biased())
            ++biased;
    }
    return static_cast<double>(biased) /
        static_cast<double>(profiles.size());
}

} // namespace bfbp
