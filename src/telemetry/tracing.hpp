/**
 * @file
 * Span tracing: nestable scoped spans, per-thread event buffers, and
 * counter-track samples, exported as Chrome Trace Event JSON that
 * loads directly in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Design constraints (see docs/TELEMETRY.md, "Span tracing"):
 *
 *  - Zero-cost when disabled. Every emission point first checks
 *    TraceSession::enabled() — a single relaxed atomic load — and
 *    does nothing else. The evaluator additionally resolves the flag
 *    once per run and only instruments *block boundaries* (one
 *    span/counter pair per ≤4096 records), never the per-record
 *    path, so predictor outputs are byte-identical with tracing on,
 *    off, or absent: tracing observes, it never perturbs.
 *
 *  - Lock-free on the hot path. Each thread appends to its own
 *    buffer through a thread-local pointer; the global registry
 *    mutex is taken only when a thread emits its *first* event of a
 *    session. Export happens after the emitting threads have been
 *    joined (the suite runner's pool joins before run() returns), so
 *    readers and writers never overlap.
 *
 *  - Sessions are explicit. start() arms collection and stamps the
 *    time origin; stop() disarms it; writeJson()/writeFile() export
 *    everything collected. start() invalidates buffers from earlier
 *    sessions, so a process can record several traces in sequence.
 *
 * The exported document is the Chrome Trace Event "JSON object
 * format": {"displayTimeUnit": "ms", "traceEvents": [...]} with
 * complete ("X"), instant ("i"), counter ("C") and metadata ("M")
 * events; timestamps are microseconds from the session epoch.
 */

#ifndef BFBP_TELEMETRY_TRACING_HPP
#define BFBP_TELEMETRY_TRACING_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bfbp::telemetry
{

/** One recorded event, before JSON export. Span/counter names may be
 *  static strings (no allocation on record) or owned std::strings
 *  (for per-job names like "SPEC00/oh-snap"). */
struct TraceEvent
{
    enum class Phase : uint8_t
    {
        Complete, //!< "X": a span with start + duration.
        Instant,  //!< "i": a point-in-time marker.
        Counter,  //!< "C": one sample on a counter track.
    };

    Phase phase = Phase::Complete;
    const char *category = "";
    const char *staticName = nullptr; //!< Fast path; nullptr -> name.
    std::string name;                 //!< Owned dynamic name.
    uint64_t startNs = 0;             //!< Nanoseconds from epoch.
    uint64_t durationNs = 0;          //!< Complete events only.
    double value = 0.0;               //!< Counter events only.

    const char *
    displayName() const
    {
        return staticName != nullptr ? staticName : name.c_str();
    }
};

/** Per-thread event buffer; appended to only by its owning thread. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(uint32_t thread_id) : tid(thread_id)
    {
        events.reserve(1024);
    }

    void append(TraceEvent event) { events.push_back(std::move(event)); }

    uint32_t threadId() const { return tid; }

  private:
    friend class TraceSession;
    uint32_t tid;
    std::string threadName; //!< Set via setCurrentThreadName().
    std::vector<TraceEvent> events;
};

/**
 * Process-wide tracing session (one per process, like a profiler).
 *
 * Thread contract: start(), stop(), clear(), writeJson() and
 * writeFile() are *control-plane* calls — they must not run
 * concurrently with threads emitting events. The bundled
 * instrumentation satisfies this structurally: benches start the
 * session before submitting suite jobs and export after the worker
 * pool has joined.
 */
class TraceSession
{
  public:
    static TraceSession &instance();

    /** Collection armed? One relaxed load; safe from any thread. */
    static bool
    enabled()
    {
        return instance().running.load(std::memory_order_relaxed);
    }

    /** Arms collection: drops buffers from any previous session,
     *  stamps the time origin, records @p process_name for the
     *  exporter's process_name metadata event. */
    void start(std::string process_name);

    /** Disarms collection; buffered events are kept for export. */
    void stop();

    /** Nanoseconds since the session epoch. */
    uint64_t nowNs() const;

    /** Names the calling thread on the exported timeline ("main",
     *  "worker 3"). No-op while disarmed. */
    void setCurrentThreadName(const std::string &name);

    /** One sample on the counter track @p name. No-op while
     *  disarmed. The const char* overload stores only the pointer
     *  (must be a static string); the string overload copies. */
    void counter(const char *name, double value);
    void counter(const std::string &name, double value);

    /** Point-in-time marker. No-op while disarmed. */
    void instant(const char *category, std::string name);

    /** A complete span with explicit bounds, for callers that only
     *  know the span's name at its end (e.g. a suite job named after
     *  the predictor its factory built). No-op while disarmed. */
    void complete(const char *category, std::string name,
                  uint64_t start_ns, uint64_t end_ns);

    /** The calling thread's buffer, registering it on first use. */
    TraceBuffer &threadBuffer();

    /** Events buffered across all threads (export-time helper). */
    size_t eventCount() const;

    /** Exports everything collected as Chrome Trace Event JSON. */
    void writeJson(std::ostream &os) const;

    /** writeJson() into @p path. @throws TraceIoError via the
     *  caller-provided stream state on failure (see tracing.cpp). */
    void writeFile(const std::string &path) const;

    /** Drops all buffers (armed state unchanged). */
    void clear();

  private:
    TraceSession() = default;

    mutable std::mutex registry;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
    std::atomic<bool> running{false};
    std::atomic<uint64_t> generation{0};
    std::chrono::steady_clock::time_point epoch{};
    std::string processName;
};

/**
 * RAII span: records a Complete event from construction to
 * destruction on the calling thread's buffer. When the session is
 * disarmed at construction the span is inert (one relaxed load, no
 * allocation — with the const char* constructor — and no clock
 * read).
 *
 * Spans nest naturally: Perfetto derives the nesting from the
 * containment of [start, start+duration) intervals per thread.
 */
class ScopedSpan
{
  public:
    /** Static-name span; no allocation even when armed. */
    ScopedSpan(const char *category, const char *static_name)
    {
        TraceSession &s = TraceSession::instance();
        if (!TraceSession::enabled())
            return;
        session = &s;
        cat = category;
        staticName = static_name;
        startNs = s.nowNs();
    }

    /** Dynamic-name span (copies @p dynamic_name when armed). */
    ScopedSpan(const char *category, const std::string &dynamic_name)
    {
        TraceSession &s = TraceSession::instance();
        if (!TraceSession::enabled())
            return;
        session = &s;
        cat = category;
        dynName = dynamic_name;
        startNs = s.nowNs();
    }

    ~ScopedSpan()
    {
        if (session != nullptr)
            finish();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void finish();

    TraceSession *session = nullptr;
    const char *cat = "";
    const char *staticName = nullptr;
    std::string dynName;
    uint64_t startNs = 0;
};

} // namespace bfbp::telemetry

#endif // BFBP_TELEMETRY_TRACING_HPP
