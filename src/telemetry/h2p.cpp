#include "telemetry/h2p.hpp"

#include <algorithm>

namespace bfbp::telemetry
{

H2pReport
buildH2pReport(std::vector<H2pInput> rows, uint64_t instructions,
               uint64_t top_k)
{
    H2pReport report;
    report.topK = std::max<uint64_t>(1, top_k);
    report.instructions = instructions;

    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [](const H2pInput &r) {
                                  return r.executions == 0;
                              }),
               rows.end());
    std::sort(rows.begin(), rows.end(),
              [](const H2pInput &a, const H2pInput &b) {
                  if (a.mispredictions != b.mispredictions)
                      return a.mispredictions > b.mispredictions;
                  return a.pc < b.pc;
              });

    report.staticBranches = rows.size();
    for (const H2pInput &r : rows) {
        report.profiledExecutions += r.executions;
        report.totalMispredictions += r.mispredictions;
    }
    const double totalMisp =
        static_cast<double>(report.totalMispredictions);

    // Top-K table with running cumulative share.
    const size_t tableRows = static_cast<size_t>(
        std::min<uint64_t>(report.topK, rows.size()));
    report.top.reserve(tableRows);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < tableRows; ++i) {
        const H2pInput &r = rows[i];
        cumulative += r.mispredictions;
        H2pReport::Row row;
        row.pc = r.pc;
        row.executions = r.executions;
        row.taken = r.taken;
        row.transitions = r.transitions;
        row.mispredictions = r.mispredictions;
        row.mpki = instructions == 0
            ? 0.0
            : 1000.0 * static_cast<double>(r.mispredictions) /
                static_cast<double>(instructions);
        row.takenRate = static_cast<double>(r.taken) /
            static_cast<double>(r.executions);
        row.transitionRate = r.executions > 1
            ? static_cast<double>(r.transitions) /
                static_cast<double>(r.executions - 1)
            : 0.0;
        row.share = totalMisp == 0.0
            ? 0.0
            : static_cast<double>(r.mispredictions) / totalMisp;
        row.cumulativeShare = totalMisp == 0.0
            ? 0.0
            : static_cast<double>(cumulative) / totalMisp;
        report.top.push_back(row);
    }

    // Concentration curve at power-of-two prefixes plus the full
    // population, computed over a running prefix sum.
    std::vector<uint64_t> prefix(rows.size() + 1, 0);
    for (size_t i = 0; i < rows.size(); ++i)
        prefix[i + 1] = prefix[i] + rows[i].mispredictions;
    auto pushPoint = [&](uint64_t branches) {
        H2pReport::Point p;
        p.branches = branches;
        p.mispredictions = prefix[static_cast<size_t>(branches)];
        p.fraction = totalMisp == 0.0
            ? 0.0
            : static_cast<double>(p.mispredictions) / totalMisp;
        report.curve.push_back(p);
    };
    for (uint64_t k = 1; k < rows.size(); k *= 2)
        pushPoint(k);
    if (!rows.empty())
        pushPoint(rows.size());

    return report;
}

} // namespace bfbp::telemetry
