/**
 * @file
 * Run telemetry: named counters, gauges, and fixed-bucket histograms
 * plus an interval (windowed) time series, collected over one or more
 * evaluation runs.
 *
 * Design constraints (see docs/TELEMETRY.md):
 *  - Near-zero overhead when unused. Components keep their own plain
 *    uint64_t event counters and export them once per run through
 *    BranchPredictor::emitTelemetry(); nothing in a predictor's hot
 *    path touches this registry. The evaluator checks its Telemetry
 *    pointer (and the session-level enable flag) once per run and the
 *    interval counter costs one compare per branch.
 *  - Deterministic output. All registries are ordered maps, so two
 *    identical runs serialize byte-identically (wall-clock gauges
 *    excepted, which is why timing lives in gauges, not counters).
 *  - Counter names follow the "component.event" convention, e.g.
 *    "tage.alloc.success" or "bst.to_non_biased".
 */

#ifndef BFBP_TELEMETRY_TELEMETRY_HPP
#define BFBP_TELEMETRY_TELEMETRY_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bfbp::telemetry
{

/** Registry of named metrics for one evaluation session. */
class Telemetry
{
  public:
    /** Fixed-bucket histogram: bucket i counts values <= bounds[i];
     *  one extra overflow bucket counts everything larger. */
    struct Histogram
    {
        std::vector<double> bounds;    //!< Ascending upper bounds.
        std::vector<uint64_t> buckets; //!< bounds.size() + 1 buckets.
        uint64_t count = 0;
        double sum = 0.0;

        void record(double value) { recordN(value, 1); }
        void recordN(double value, uint64_t n);

        /**
         * Bucket-resolution quantile estimate: the upper bound of
         * the first bucket whose cumulative count reaches
         * ceil(p * count) samples (p clamped to [0, 1]). Values in
         * the overflow bucket report the last finite bound; with no
         * bounds at all the mean (sum / count) is the only estimate
         * available. An empty histogram returns 0.0.
         *
         * The estimate is exact whenever every recorded value sits
         * on a bucket bound (integer-valued histograms with integer
         * bounds) and otherwise correct to bucket granularity.
         */
        double percentile(double p) const;
    };

    /** One windowed sample of the per-interval time series. */
    struct IntervalSample
    {
        uint64_t index = 0;        //!< Window number, 0-based.
        uint64_t branches = 0;     //!< Cumulative cond branches at end.
        uint64_t instructions = 0; //!< Instructions inside the window.
        uint64_t mispredicts = 0;  //!< Mispredictions inside the window.

        /** Window-local mispredictions per 1000 instructions. */
        double mpki() const;

        bool operator==(const IntervalSample &) const = default;
    };

    explicit Telemetry(bool enabled = true) : on(enabled) {}

    /** Session-level enable flag; a disabled sink is never written. */
    bool enabled() const { return on; }
    void setEnabled(bool enabled) { on = enabled; }

    /** Get-or-create counter (created at 0). The reference stays
     *  valid for the lifetime of this Telemetry. */
    uint64_t &counter(const std::string &name);

    /** Adds @p by to @p name (creating it at 0). */
    void add(const std::string &name, uint64_t by = 1);

    /** Current counter value; 0 when the counter does not exist. */
    uint64_t counterValue(const std::string &name) const;

    void setGauge(const std::string &name, double value);

    /** Current gauge value; 0.0 when the gauge does not exist. */
    double gaugeValue(const std::string &name) const;

    /**
     * Get-or-create histogram. @p bounds is used only on creation
     * and must be ascending; later calls return the existing
     * histogram regardless of bounds.
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    /** Existing histogram or nullptr. */
    const Histogram *findHistogram(const std::string &name) const;

    /** Free-form string annotation (trace name, option values...). */
    void note(const std::string &key, std::string value);

    const std::map<std::string, uint64_t> &counters() const
    {
        return counterMap;
    }
    const std::map<std::string, double> &gauges() const
    {
        return gaugeMap;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histogramMap;
    }
    const std::map<std::string, std::string> &notes() const
    {
        return noteMap;
    }

    std::vector<IntervalSample> &intervals() { return series; }
    const std::vector<IntervalSample> &intervals() const
    {
        return series;
    }

    /** Drops every metric (the enable flag is kept). */
    void clear();

  private:
    bool on;
    std::map<std::string, uint64_t> counterMap;
    std::map<std::string, double> gaugeMap;
    std::map<std::string, Histogram> histogramMap;
    std::map<std::string, std::string> noteMap;
    std::vector<IntervalSample> series;
};

/**
 * Wall-clock timer over std::chrono::steady_clock. On destruction
 * (or stop()) it records the elapsed seconds into a gauge named
 * "<name>.seconds"; when @p events is supplied at stop time it also
 * records "<name>.per_second" throughput.
 */
class ScopedTimer
{
  public:
    /** @param sink Destination registry; may be null (timer still
     *         measures, records nothing). */
    ScopedTimer(Telemetry *sink, std::string name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Seconds since construction (running) or until stop(). */
    double elapsedSeconds() const;

    /**
     * Records the gauges now instead of at destruction. @p events,
     * when nonzero, additionally records "<name>.per_second" =
     * events / elapsed.
     */
    void stop(uint64_t events = 0);

  private:
    Telemetry *sink;
    std::string name;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point end;
    bool stopped = false;
};

} // namespace bfbp::telemetry

#endif // BFBP_TELEMETRY_TELEMETRY_HPP
