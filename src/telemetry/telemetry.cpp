#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bfbp::telemetry
{

void
Telemetry::Histogram::recordN(double value, uint64_t n)
{
    if (n == 0)
        return;
    const auto it =
        std::lower_bound(bounds.begin(), bounds.end(), value);
    const size_t bucket =
        static_cast<size_t>(it - bounds.begin()); // == bounds.size()
                                                  // for overflow
    buckets[bucket] += n;
    count += n;
    sum += value * static_cast<double>(n);
}

double
Telemetry::Histogram::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // ceil(p * count), at least 1: percentile(0) is the smallest
    // recorded sample's bucket, percentile(1) the largest.
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(p * static_cast<double>(count))));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= target) {
            if (i < bounds.size())
                return bounds[i];
            // Overflow bucket: no finite upper bound recorded.
            return bounds.empty() ? sum / static_cast<double>(count)
                                  : bounds.back();
        }
    }
    return bounds.empty() ? sum / static_cast<double>(count)
                          : bounds.back();
}

double
Telemetry::IntervalSample::mpki() const
{
    return instructions == 0 ? 0.0
        : 1000.0 * static_cast<double>(mispredicts) /
          static_cast<double>(instructions);
}

uint64_t &
Telemetry::counter(const std::string &name)
{
    return counterMap[name];
}

void
Telemetry::add(const std::string &name, uint64_t by)
{
    counterMap[name] += by;
}

uint64_t
Telemetry::counterValue(const std::string &name) const
{
    const auto it = counterMap.find(name);
    return it == counterMap.end() ? 0 : it->second;
}

void
Telemetry::setGauge(const std::string &name, double value)
{
    gaugeMap[name] = value;
}

double
Telemetry::gaugeValue(const std::string &name) const
{
    const auto it = gaugeMap.find(name);
    return it == gaugeMap.end() ? 0.0 : it->second;
}

Telemetry::Histogram &
Telemetry::histogram(const std::string &name, std::vector<double> bounds)
{
    const auto it = histogramMap.find(name);
    if (it != histogramMap.end())
        return it->second;
    assert(std::is_sorted(bounds.begin(), bounds.end()));
    Histogram h;
    h.buckets.assign(bounds.size() + 1, 0);
    h.bounds = std::move(bounds);
    return histogramMap.emplace(name, std::move(h)).first->second;
}

const Telemetry::Histogram *
Telemetry::findHistogram(const std::string &name) const
{
    const auto it = histogramMap.find(name);
    return it == histogramMap.end() ? nullptr : &it->second;
}

void
Telemetry::note(const std::string &key, std::string value)
{
    noteMap[key] = std::move(value);
}

void
Telemetry::clear()
{
    counterMap.clear();
    gaugeMap.clear();
    histogramMap.clear();
    noteMap.clear();
    series.clear();
}

ScopedTimer::ScopedTimer(Telemetry *sink_registry, std::string timer_name)
    : sink(sink_registry), name(std::move(timer_name)),
      start(std::chrono::steady_clock::now())
{
}

ScopedTimer::~ScopedTimer()
{
    if (!stopped)
        stop();
}

double
ScopedTimer::elapsedSeconds() const
{
    const auto now =
        stopped ? end : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

void
ScopedTimer::stop(uint64_t events)
{
    if (stopped)
        return;
    end = std::chrono::steady_clock::now();
    stopped = true;
    if (!sink || !sink->enabled())
        return;
    const double secs = elapsedSeconds();
    sink->setGauge(name + ".seconds", secs);
    if (events != 0 && secs > 0.0) {
        sink->setGauge(name + ".per_second",
                       static_cast<double>(events) / secs);
    }
}

} // namespace bfbp::telemetry
