#include "telemetry/sinks.hpp"

#include <cstdio>
#include <iomanip>
#include <ostream>

#include "telemetry/json_writer.hpp"

namespace bfbp::telemetry
{

namespace
{

void
writeHistogramJson(JsonWriter &w, const Telemetry::Histogram &h)
{
    w.beginObject();
    w.key("bounds").beginArray();
    for (const double b : h.bounds)
        w.value(b);
    w.endArray();
    w.key("buckets").beginArray();
    for (const uint64_t c : h.buckets)
        w.value(c);
    w.endArray();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.endObject();
}

/** Branch addresses as hex strings: JSON numbers lose precision
 *  above 2^53 and hex is what readers cross-reference anyway. */
std::string
hexPc(uint64_t pc)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

void
writeH2pJson(JsonWriter &w, const H2pReport &h2p)
{
    w.beginObject();
    w.member("top_k", h2p.topK);
    w.member("static_branches", h2p.staticBranches);
    w.member("profiled_executions", h2p.profiledExecutions);
    w.member("total_mispredictions", h2p.totalMispredictions);
    w.member("instructions", h2p.instructions);

    w.key("top").beginArray();
    for (size_t i = 0; i < h2p.top.size(); ++i) {
        const H2pReport::Row &row = h2p.top[i];
        w.beginObject();
        w.member("rank", static_cast<uint64_t>(i + 1));
        w.member("pc", hexPc(row.pc));
        w.member("executions", row.executions);
        w.member("taken", row.taken);
        w.member("transitions", row.transitions);
        w.member("mispredictions", row.mispredictions);
        w.member("mpki", row.mpki);
        w.member("taken_rate", row.takenRate);
        w.member("transition_rate", row.transitionRate);
        w.member("share", row.share);
        w.member("cumulative_share", row.cumulativeShare);
        w.endObject();
    }
    w.endArray();

    w.key("concentration").beginArray();
    for (const H2pReport::Point &p : h2p.curve) {
        w.beginObject();
        w.member("branches", p.branches);
        w.member("mispredictions", p.mispredictions);
        w.member("fraction", p.fraction);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/** CSV fields are known-safe (no commas/quotes) except free-form
 *  names, which we quote defensively when needed. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (const char c : s) {
        if (c == '"')
            quoted += "\"\"";
        else
            quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // anonymous namespace

void
writeRunJson(JsonWriter &w, const RunRecord &run)
{
    w.beginObject();
    w.member("trace", run.traceName);
    w.member("predictor", run.predictorName);

    w.key("options").beginObject();
    for (const auto &[k, v] : run.options)
        w.member(k, v);
    w.endObject();

    w.key("summary").beginObject();
    w.member("instructions", run.instructions);
    w.member("cond_branches", run.condBranches);
    w.member("other_branches", run.otherBranches);
    w.member("mispredictions", run.mispredictions);
    w.member("mpki", run.mpki);
    w.member("misprediction_rate", run.mispredictionRate);
    w.endObject();

    w.key("timing").beginObject();
    w.member("wall_seconds", run.wallSeconds);
    w.member("branches_per_second", run.branchesPerSecond);
    w.endObject();

    w.member("storage_bits", run.storageBits);

    w.key("counters").beginObject();
    for (const auto &[name, value] : run.data.counters())
        w.member(name, value);
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, value] : run.data.gauges())
        w.member(name, value);
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : run.data.histograms()) {
        w.key(name);
        writeHistogramJson(w, h);
    }
    w.endObject();

    w.key("notes").beginObject();
    for (const auto &[k, v] : run.data.notes())
        w.member(k, v);
    w.endObject();

    if (run.h2p.present()) {
        w.key("h2p");
        writeH2pJson(w, run.h2p);
    }

    w.key("intervals").beginArray();
    for (const auto &s : run.data.intervals()) {
        w.beginObject();
        w.member("index", s.index);
        w.member("branches", s.branches);
        w.member("instructions", s.instructions);
        w.member("mispredicts", s.mispredicts);
        w.member("mpki", s.mpki());
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

void
writeRunsJson(std::ostream &os, const std::string &suite,
              const std::vector<RunRecord> &runs)
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "bfbp-telemetry-v1");
    w.member("suite", suite);
    w.key("runs").beginArray();
    for (const RunRecord &run : runs)
        writeRunJson(w, run);
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeRunsCsv(std::ostream &os, const std::vector<RunRecord> &runs)
{
    os << "trace,predictor,instructions,cond_branches,mispredictions,"
          "mpki,misprediction_rate,wall_seconds,branches_per_second,"
          "storage_bits\n";
    for (const RunRecord &r : runs) {
        os << csvField(r.traceName) << ',' << csvField(r.predictorName)
           << ',' << r.instructions << ',' << r.condBranches << ','
           << r.mispredictions << ',' << std::fixed
           << std::setprecision(4) << r.mpki << ','
           << std::setprecision(6) << r.mispredictionRate << ','
           << std::setprecision(4) << r.wallSeconds << ','
           << std::setprecision(0) << r.branchesPerSecond << ','
           << r.storageBits << '\n';
        os.unsetf(std::ios::floatfield);
    }
}

void
writeCountersCsv(std::ostream &os, const std::vector<RunRecord> &runs)
{
    os << "trace,predictor,counter,value\n";
    for (const RunRecord &r : runs) {
        for (const auto &[name, value] : r.data.counters()) {
            os << csvField(r.traceName) << ','
               << csvField(r.predictorName) << ',' << csvField(name)
               << ',' << value << '\n';
        }
    }
}

void
writeH2pCsv(std::ostream &os, const std::vector<RunRecord> &runs)
{
    os << "trace,predictor,rank,pc,executions,taken,transitions,"
          "mispredictions,mpki,taken_rate,transition_rate,share,"
          "cumulative_share\n";
    for (const RunRecord &r : runs) {
        if (!r.h2p.present())
            continue;
        for (size_t i = 0; i < r.h2p.top.size(); ++i) {
            const H2pReport::Row &row = r.h2p.top[i];
            os << csvField(r.traceName) << ','
               << csvField(r.predictorName) << ',' << (i + 1) << ','
               << hexPc(row.pc) << ',' << row.executions << ','
               << row.taken << ',' << row.transitions << ','
               << row.mispredictions << ',' << std::fixed
               << std::setprecision(4) << row.mpki << ','
               << std::setprecision(6) << row.takenRate << ','
               << row.transitionRate << ',' << row.share << ','
               << row.cumulativeShare << '\n';
            os.unsetf(std::ios::floatfield);
        }
    }
}

void
writeRunText(std::ostream &os, const RunRecord &run)
{
    os << "run: " << run.traceName << " / " << run.predictorName
       << "\n";
    for (const auto &[k, v] : run.options)
        os << "  option " << k << " = " << v << "\n";
    os << "  instructions      " << run.instructions << "\n"
       << "  cond branches     " << run.condBranches << "\n"
       << "  mispredictions    " << run.mispredictions << "\n"
       << "  MPKI              " << std::fixed << std::setprecision(3)
       << run.mpki << "\n"
       << "  wall seconds      " << std::setprecision(4)
       << run.wallSeconds << "\n"
       << "  branches/second   " << std::setprecision(0)
       << run.branchesPerSecond << "\n";
    os.unsetf(std::ios::floatfield);
    if (run.storageBits != 0) {
        os << "  storage bits      " << run.storageBits << " ("
           << (run.storageBits + 7) / 8 << " bytes)\n";
    }
    if (!run.data.counters().empty()) {
        os << "  counters:\n";
        for (const auto &[name, value] : run.data.counters())
            os << "    " << std::left << std::setw(36) << name
               << std::right << value << "\n";
    }
    for (const auto &[name, h] : run.data.histograms()) {
        os << "  histogram " << name << " (count " << h.count << "):\n";
        for (size_t i = 0; i < h.buckets.size(); ++i) {
            os << "    ";
            if (i < h.bounds.size())
                os << "<= " << h.bounds[i];
            else
                os << "overflow";
            os << ": " << h.buckets[i] << "\n";
        }
    }
    if (!run.data.intervals().empty()) {
        os << "  interval series (" << run.data.intervals().size()
           << " windows):\n";
        for (const auto &s : run.data.intervals()) {
            os << "    #" << s.index << " branches " << s.branches
               << " mpki " << std::fixed << std::setprecision(3)
               << s.mpki() << "\n";
        }
        os.unsetf(std::ios::floatfield);
    }
}

} // namespace bfbp::telemetry
