#include "telemetry/sinks.hpp"

#include <iomanip>
#include <ostream>

#include "telemetry/json_writer.hpp"

namespace bfbp::telemetry
{

namespace
{

void
writeHistogramJson(JsonWriter &w, const Telemetry::Histogram &h)
{
    w.beginObject();
    w.key("bounds").beginArray();
    for (const double b : h.bounds)
        w.value(b);
    w.endArray();
    w.key("buckets").beginArray();
    for (const uint64_t c : h.buckets)
        w.value(c);
    w.endArray();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.endObject();
}

/** CSV fields are known-safe (no commas/quotes) except free-form
 *  names, which we quote defensively when needed. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (const char c : s) {
        if (c == '"')
            quoted += "\"\"";
        else
            quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // anonymous namespace

void
writeRunJson(JsonWriter &w, const RunRecord &run)
{
    w.beginObject();
    w.member("trace", run.traceName);
    w.member("predictor", run.predictorName);

    w.key("options").beginObject();
    for (const auto &[k, v] : run.options)
        w.member(k, v);
    w.endObject();

    w.key("summary").beginObject();
    w.member("instructions", run.instructions);
    w.member("cond_branches", run.condBranches);
    w.member("other_branches", run.otherBranches);
    w.member("mispredictions", run.mispredictions);
    w.member("mpki", run.mpki);
    w.member("misprediction_rate", run.mispredictionRate);
    w.endObject();

    w.key("timing").beginObject();
    w.member("wall_seconds", run.wallSeconds);
    w.member("branches_per_second", run.branchesPerSecond);
    w.endObject();

    w.member("storage_bits", run.storageBits);

    w.key("counters").beginObject();
    for (const auto &[name, value] : run.data.counters())
        w.member(name, value);
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, value] : run.data.gauges())
        w.member(name, value);
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : run.data.histograms()) {
        w.key(name);
        writeHistogramJson(w, h);
    }
    w.endObject();

    w.key("notes").beginObject();
    for (const auto &[k, v] : run.data.notes())
        w.member(k, v);
    w.endObject();

    w.key("intervals").beginArray();
    for (const auto &s : run.data.intervals()) {
        w.beginObject();
        w.member("index", s.index);
        w.member("branches", s.branches);
        w.member("instructions", s.instructions);
        w.member("mispredicts", s.mispredicts);
        w.member("mpki", s.mpki());
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

void
writeRunsJson(std::ostream &os, const std::string &suite,
              const std::vector<RunRecord> &runs)
{
    JsonWriter w(os);
    w.beginObject();
    w.member("schema", "bfbp-telemetry-v1");
    w.member("suite", suite);
    w.key("runs").beginArray();
    for (const RunRecord &run : runs)
        writeRunJson(w, run);
    w.endArray();
    w.endObject();
    os << '\n';
}

void
writeRunsCsv(std::ostream &os, const std::vector<RunRecord> &runs)
{
    os << "trace,predictor,instructions,cond_branches,mispredictions,"
          "mpki,misprediction_rate,wall_seconds,branches_per_second,"
          "storage_bits\n";
    for (const RunRecord &r : runs) {
        os << csvField(r.traceName) << ',' << csvField(r.predictorName)
           << ',' << r.instructions << ',' << r.condBranches << ','
           << r.mispredictions << ',' << std::fixed
           << std::setprecision(4) << r.mpki << ','
           << std::setprecision(6) << r.mispredictionRate << ','
           << std::setprecision(4) << r.wallSeconds << ','
           << std::setprecision(0) << r.branchesPerSecond << ','
           << r.storageBits << '\n';
        os.unsetf(std::ios::floatfield);
    }
}

void
writeCountersCsv(std::ostream &os, const std::vector<RunRecord> &runs)
{
    os << "trace,predictor,counter,value\n";
    for (const RunRecord &r : runs) {
        for (const auto &[name, value] : r.data.counters()) {
            os << csvField(r.traceName) << ','
               << csvField(r.predictorName) << ',' << csvField(name)
               << ',' << value << '\n';
        }
    }
}

void
writeRunText(std::ostream &os, const RunRecord &run)
{
    os << "run: " << run.traceName << " / " << run.predictorName
       << "\n";
    for (const auto &[k, v] : run.options)
        os << "  option " << k << " = " << v << "\n";
    os << "  instructions      " << run.instructions << "\n"
       << "  cond branches     " << run.condBranches << "\n"
       << "  mispredictions    " << run.mispredictions << "\n"
       << "  MPKI              " << std::fixed << std::setprecision(3)
       << run.mpki << "\n"
       << "  wall seconds      " << std::setprecision(4)
       << run.wallSeconds << "\n"
       << "  branches/second   " << std::setprecision(0)
       << run.branchesPerSecond << "\n";
    os.unsetf(std::ios::floatfield);
    if (run.storageBits != 0) {
        os << "  storage bits      " << run.storageBits << " ("
           << (run.storageBits + 7) / 8 << " bytes)\n";
    }
    if (!run.data.counters().empty()) {
        os << "  counters:\n";
        for (const auto &[name, value] : run.data.counters())
            os << "    " << std::left << std::setw(36) << name
               << std::right << value << "\n";
    }
    for (const auto &[name, h] : run.data.histograms()) {
        os << "  histogram " << name << " (count " << h.count << "):\n";
        for (size_t i = 0; i < h.buckets.size(); ++i) {
            os << "    ";
            if (i < h.bounds.size())
                os << "<= " << h.bounds[i];
            else
                os << "overflow";
            os << ": " << h.buckets[i] << "\n";
        }
    }
    if (!run.data.intervals().empty()) {
        os << "  interval series (" << run.data.intervals().size()
           << " windows):\n";
        for (const auto &s : run.data.intervals()) {
            os << "    #" << s.index << " branches " << s.branches
               << " mpki " << std::fixed << std::setprecision(3)
               << s.mpki() << "\n";
        }
        os.unsetf(std::ios::floatfield);
    }
}

} // namespace bfbp::telemetry
