/**
 * @file
 * Per-branch predictability (H2P) report.
 *
 * The workload-characterization literature ("Branch Prediction Is
 * Not a Solved Problem", the Bullseye H2P work) observes that the
 * mispredictions of a run concentrate in a small set of static
 * hard-to-predict (H2P) branches. This module turns the evaluator's
 * flat per-branch profile into that view:
 *
 *  - the top-K static branches by misprediction count, each with its
 *    per-branch MPKI (against whole-run instructions), taken rate,
 *    transition rate (how often the direction flips between
 *    consecutive executions — the classic H2P signature is a high
 *    transition rate that history-based predictors still fail on),
 *    and its share of the run's total mispredictions;
 *
 *  - a misprediction concentration curve: the fraction of all
 *    mispredictions carried by the top 1, 2, 4, 8, ... branches, up
 *    to the full static-branch population.
 *
 * The report is deterministic (ties broken by ascending pc) and pure
 * arithmetic over profile rows, so it serializes byte-identically
 * across runs and worker counts. It is exported through the JSON/CSV
 * sinks (sinks.hpp) under the per-run "h2p" key and aggregated
 * across a suite by tools/trace_report.py; every suite bench
 * surfaces it behind --h2p-report (docs/TELEMETRY.md).
 */

#ifndef BFBP_TELEMETRY_H2P_HPP
#define BFBP_TELEMETRY_H2P_HPP

#include <cstdint>
#include <vector>

namespace bfbp::telemetry
{

/** One static branch's raw profile counters (the evaluator's
 *  BranchProfile, minus the sim-layer dependency). */
struct H2pInput
{
    uint64_t pc = 0;
    uint64_t executions = 0;
    uint64_t taken = 0;
    uint64_t transitions = 0; //!< Direction flips between executions.
    uint64_t mispredictions = 0;
};

/** Top-K + concentration-curve view over one run's branch profiles. */
struct H2pReport
{
    /** One ranked row of the top-K table. */
    struct Row
    {
        uint64_t pc = 0;
        uint64_t executions = 0;
        uint64_t taken = 0;
        uint64_t transitions = 0;
        uint64_t mispredictions = 0;
        double mpki = 0.0;           //!< Against whole-run instructions.
        double takenRate = 0.0;      //!< taken / executions.
        double transitionRate = 0.0; //!< transitions / (executions - 1).
        double share = 0.0;          //!< Of total mispredictions.
        double cumulativeShare = 0.0;
    };

    /** One point of the concentration curve. */
    struct Point
    {
        uint64_t branches = 0;        //!< Top-N static branches...
        uint64_t mispredictions = 0;  //!< ...carry this many mispredicts
        double fraction = 0.0;        //!< ...i.e. this fraction of all.
    };

    uint64_t topK = 0;            //!< Requested table size.
    uint64_t staticBranches = 0;  //!< Distinct profiled pcs.
    uint64_t profiledExecutions = 0;
    uint64_t totalMispredictions = 0;
    uint64_t instructions = 0;    //!< Whole-run denominator for mpki.
    std::vector<Row> top;         //!< min(topK, staticBranches) rows.
    std::vector<Point> curve;     //!< At 1, 2, 4, ... and staticBranches.

    bool present() const { return topK != 0; }
};

/**
 * Builds the report from raw profile rows (any order; sorted
 * internally by mispredictions descending, pc ascending) against the
 * run's @p instructions total. @p top_k must be >= 1; rows with zero
 * executions are ignored.
 */
H2pReport buildH2pReport(std::vector<H2pInput> rows,
                         uint64_t instructions, uint64_t top_k);

} // namespace bfbp::telemetry

#endif // BFBP_TELEMETRY_H2P_HPP
