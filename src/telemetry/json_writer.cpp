#include "telemetry/json_writer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace bfbp::telemetry
{

JsonWriter::JsonWriter(std::ostream &os, unsigned indent)
    : out(os), indentWidth(indent)
{
}

void
JsonWriter::raw(const std::string &s)
{
    out << s;
}

void
JsonWriter::newline()
{
    if (indentWidth == 0)
        return;
    out << '\n';
    for (size_t i = 0; i < stack.size() * indentWidth; ++i)
        out << ' ';
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        assert(!rootWritten && "multiple JSON roots");
        rootWritten = true;
        return;
    }
    Frame &top = stack.back();
    if (top.array) {
        assert(!pendingKey && "key inside array");
        if (!top.first)
            out << ',';
        top.first = false;
        newline();
    } else {
        assert(pendingKey && "object value without key");
        pendingKey = false;
    }
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    assert(!stack.empty() && !stack.back().array &&
           "key outside object");
    assert(!pendingKey && "two keys in a row");
    Frame &top = stack.back();
    if (!top.first)
        out << ',';
    top.first = false;
    newline();
    out << '"' << escape(k) << "\":";
    if (indentWidth != 0)
        out << ' ';
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    stack.push_back({false, true});
    out << '{';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    assert(!stack.empty() && !stack.back().array);
    assert(!pendingKey && "dangling key");
    const bool empty = stack.back().first;
    stack.pop_back();
    if (!empty)
        newline();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    stack.push_back({true, true});
    out << '[';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    assert(!stack.empty() && stack.back().array);
    const bool empty = stack.back().first;
    stack.pop_back();
    if (!empty)
        newline();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    out << '"' << escape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    out << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        out << "null";
        return *this;
    }
    // Shortest representation that round-trips a double; %.17g is
    // lossless, but prefer the shorter %.15g when it round-trips.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.15g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v)
        std::snprintf(buf, sizeof buf, "%.17g", v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out << "null";
    return *this;
}

bool
JsonWriter::complete() const
{
    return stack.empty() && rootWritten && !pendingKey;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c; // UTF-8 passes through untouched.
            }
        }
    }
    return out;
}

} // namespace bfbp::telemetry
