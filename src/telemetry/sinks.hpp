/**
 * @file
 * Run-record sinks: serialize whole evaluation runs — trace name,
 * predictor name, eval options, summary accuracy numbers, wall-time
 * and throughput, storage budget, all counters/gauges/histograms and
 * the interval time series — to pretty text, CSV, or JSON.
 *
 * The JSON document schema is "bfbp-telemetry-v1", documented in
 * docs/TELEMETRY.md. The telemetry library sits below sim/, so
 * RunRecord is a plain struct; bench/bench_common.hpp provides the
 * EvalResult -> RunRecord conversion.
 */

#ifndef BFBP_TELEMETRY_SINKS_HPP
#define BFBP_TELEMETRY_SINKS_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "telemetry/h2p.hpp"
#include "telemetry/telemetry.hpp"

namespace bfbp::telemetry
{

class JsonWriter;

/** Everything recorded about one (trace, predictor) evaluation. */
struct RunRecord
{
    std::string traceName;
    std::string predictorName;

    // Summary accuracy numbers (mirrors EvalResult).
    uint64_t instructions = 0;
    uint64_t condBranches = 0;
    uint64_t otherBranches = 0;
    uint64_t mispredictions = 0;
    double mpki = 0.0;
    double mispredictionRate = 0.0;

    // Run timing.
    double wallSeconds = 0.0;
    double branchesPerSecond = 0.0;

    // Hardware budget of the predictor.
    uint64_t storageBits = 0;

    // Eval options as strings ("scale", "interval", ...).
    std::map<std::string, std::string> options;

    // Counters, gauges, histograms, notes, interval series.
    Telemetry data{true};

    // Per-branch H2P report (--h2p-report); h2p.present() gates the
    // "h2p" key in the serialized record.
    H2pReport h2p;
};

/** Writes one run as a JSON object into an open writer. */
void writeRunJson(JsonWriter &w, const RunRecord &run);

/**
 * Writes a whole document: {"schema": "bfbp-telemetry-v1",
 * "suite": ..., "runs": [...]} pretty-printed to @p os.
 */
void writeRunsJson(std::ostream &os, const std::string &suite,
                   const std::vector<RunRecord> &runs);

/**
 * Summary CSV: one header row plus one row per run
 * (trace, predictor, instructions, cond_branches, mispredictions,
 * mpki, misprediction_rate, wall_seconds, branches_per_second,
 * storage_bits).
 */
void writeRunsCsv(std::ostream &os, const std::vector<RunRecord> &runs);

/** Counter CSV: (trace, predictor, counter, value) rows. */
void writeCountersCsv(std::ostream &os,
                      const std::vector<RunRecord> &runs);

/**
 * H2P CSV: one row per ranked top-K branch of every run that carries
 * a report (trace, predictor, rank, pc (hex), executions, taken,
 * transitions, mispredictions, mpki, taken_rate, transition_rate,
 * share, cumulative_share). Runs without a report emit nothing.
 */
void writeH2pCsv(std::ostream &os, const std::vector<RunRecord> &runs);

/** Pretty text report for one run (summary + counters + series). */
void writeRunText(std::ostream &os, const RunRecord &run);

} // namespace bfbp::telemetry

#endif // BFBP_TELEMETRY_SINKS_HPP
