#include "telemetry/tracing.hpp"

#include <fstream>
#include <ostream>

#include "telemetry/json_writer.hpp"
#include "util/errors.hpp"

namespace bfbp::telemetry
{

TraceSession &
TraceSession::instance()
{
    static TraceSession session;
    return session;
}

void
TraceSession::start(std::string process_name)
{
    std::lock_guard<std::mutex> lock(registry);
    buffers.clear();
    processName = std::move(process_name);
    epoch = std::chrono::steady_clock::now();
    // Invalidate thread-local buffer pointers cached during earlier
    // sessions *before* arming, so no thread can append to a freed
    // buffer (threadBuffer() re-checks the generation).
    generation.fetch_add(1, std::memory_order_release);
    running.store(true, std::memory_order_release);
}

void
TraceSession::stop()
{
    running.store(false, std::memory_order_release);
}

uint64_t
TraceSession::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

TraceBuffer &
TraceSession::threadBuffer()
{
    thread_local TraceBuffer *cached = nullptr;
    thread_local uint64_t cachedGeneration = ~uint64_t{0};
    const uint64_t current = generation.load(std::memory_order_acquire);
    if (cached != nullptr && cachedGeneration == current)
        return *cached;

    std::lock_guard<std::mutex> lock(registry);
    auto buffer = std::make_unique<TraceBuffer>(
        static_cast<uint32_t>(buffers.size()));
    cached = buffer.get();
    cachedGeneration = current;
    buffers.push_back(std::move(buffer));
    return *cached;
}

void
TraceSession::setCurrentThreadName(const std::string &name)
{
    if (!enabled())
        return;
    threadBuffer().threadName = name;
}

void
TraceSession::counter(const char *name, double value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.staticName = name;
    event.startNs = nowNs();
    event.value = value;
    threadBuffer().append(std::move(event));
}

void
TraceSession::counter(const std::string &name, double value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.name = name;
    event.startNs = nowNs();
    event.value = value;
    threadBuffer().append(std::move(event));
}

void
TraceSession::instant(const char *category, std::string name)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Instant;
    event.category = category;
    event.name = std::move(name);
    event.startNs = nowNs();
    threadBuffer().append(std::move(event));
}

void
TraceSession::complete(const char *category, std::string name,
                       uint64_t start_ns, uint64_t end_ns)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Complete;
    event.category = category;
    event.name = std::move(name);
    event.startNs = start_ns;
    event.durationNs = end_ns >= start_ns ? end_ns - start_ns : 0;
    threadBuffer().append(std::move(event));
}

size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lock(registry);
    size_t n = 0;
    for (const auto &buffer : buffers)
        n += buffer->events.size();
    return n;
}

namespace
{

/** Microseconds (Chrome trace unit) from nanoseconds. */
double
micros(uint64_t ns)
{
    return static_cast<double>(ns) / 1000.0;
}

void
writeEventJson(JsonWriter &w, const TraceEvent &event, uint32_t tid)
{
    w.beginObject();
    switch (event.phase) {
    case TraceEvent::Phase::Complete:
        w.member("ph", "X");
        w.member("cat", event.category);
        w.member("name", event.displayName());
        w.member("ts", micros(event.startNs));
        w.member("dur", micros(event.durationNs));
        break;
    case TraceEvent::Phase::Instant:
        w.member("ph", "i");
        w.member("cat", event.category);
        w.member("name", event.displayName());
        w.member("ts", micros(event.startNs));
        w.member("s", "t"); // Thread-scoped instant.
        break;
    case TraceEvent::Phase::Counter:
        w.member("ph", "C");
        w.member("name", event.displayName());
        w.member("ts", micros(event.startNs));
        w.key("args").beginObject();
        w.member("value", event.value);
        w.endObject();
        break;
    }
    w.member("pid", 1);
    w.member("tid", tid);
    w.endObject();
}

} // anonymous namespace

void
TraceSession::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(registry);
    JsonWriter w(os, 0);
    w.beginObject();
    w.member("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Metadata: process name plus one thread_name row per buffer, so
    // Perfetto labels the per-worker tracks.
    w.beginObject();
    w.member("ph", "M");
    w.member("name", "process_name");
    w.member("pid", 1);
    w.member("tid", 0);
    w.key("args").beginObject();
    w.member("name", processName.empty() ? "bfbp" : processName);
    w.endObject();
    w.endObject();
    for (const auto &buffer : buffers) {
        w.beginObject();
        w.member("ph", "M");
        w.member("name", "thread_name");
        w.member("pid", 1);
        w.member("tid", buffer->tid);
        w.key("args").beginObject();
        w.member("name", buffer->threadName.empty()
                             ? "thread " + std::to_string(buffer->tid)
                             : buffer->threadName);
        w.endObject();
        w.endObject();
    }

    for (const auto &buffer : buffers) {
        for (const TraceEvent &event : buffer->events)
            writeEventJson(w, event, buffer->tid);
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

void
TraceSession::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        throw TraceIoError("cannot open trace output file for writing: " +
                           path);
    }
    writeJson(os);
    os.flush();
    if (os.fail()) {
        throw TraceIoError("write failed for trace output file " + path +
                           " (disk full?)");
    }
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(registry);
    buffers.clear();
    generation.fetch_add(1, std::memory_order_release);
}

void
ScopedSpan::finish()
{
    const uint64_t endNs = session->nowNs();
    TraceEvent event;
    event.phase = TraceEvent::Phase::Complete;
    event.category = cat;
    event.staticName = staticName;
    event.name = std::move(dynName);
    event.startNs = startNs;
    event.durationNs = endNs >= startNs ? endNs - startNs : 0;
    session->threadBuffer().append(std::move(event));
}

} // namespace bfbp::telemetry
