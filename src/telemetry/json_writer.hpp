/**
 * @file
 * Minimal streaming JSON writer (no third-party dependencies).
 *
 * Emits syntactically valid, pretty-printed JSON through a small
 * state machine: the writer tracks whether each open container needs
 * a separating comma, so callers just interleave key()/value()/
 * begin*()/end*() calls. Strings are escaped per RFC 8259; doubles
 * are printed with round-trip precision, and non-finite values
 * degrade to null (JSON has no NaN/Inf).
 *
 * Misuse (value without key inside an object, unbalanced end calls)
 * is caught by assertions in debug builds.
 */

#ifndef BFBP_TELEMETRY_JSON_WRITER_HPP
#define BFBP_TELEMETRY_JSON_WRITER_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bfbp::telemetry
{

/** Streaming pretty-printing JSON writer over a std::ostream. */
class JsonWriter
{
  public:
    /** @param indent Spaces per nesting level (0 = compact). */
    explicit JsonWriter(std::ostream &os, unsigned indent = 2);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(bool b);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    JsonWriter &value(double v);
    JsonWriter &null();

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    member(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** True once every opened container has been closed. */
    bool complete() const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    struct Frame
    {
        bool array = false;
        bool first = true;
    };

    void beforeValue(); //!< Comma/newline/indent bookkeeping.
    void newline();
    void raw(const std::string &s);

    std::ostream &out;
    unsigned indentWidth;
    std::vector<Frame> stack;
    bool pendingKey = false;
    bool rootWritten = false;
};

} // namespace bfbp::telemetry

#endif // BFBP_TELEMETRY_JSON_WRITER_HPP
