/**
 * @file
 * Figure 12: tagged-table hit histograms — the percentage of
 * predictions provided by each tagged table — for a 15-table
 * conventional TAGE vs a 10-table BF-TAGE, on the seven SPEC traces
 * the paper plots (SPEC00/02/03/06/09/15/17).
 *
 * Paper shape: BF-TAGE shifts the provider distribution from
 * longer-history toward shorter-history tables, confirming that the
 * compressed BF-GHR brings old context within reach of small table
 * indices.
 */

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig12_histogram", [&]() -> int {
    using namespace bfbp;
    auto opts = bench::Options::parse(
        argc, argv, "Figure 12: per-table provider histograms");
    if (opts.traces.empty()) {
        opts.traces = {"SPEC00", "SPEC02", "SPEC03", "SPEC06",
                       "SPEC09", "SPEC15", "SPEC17"};
    }
    bench::RunArchive archive("fig12_histogram", opts);

    bench::banner("Figure 12: % of branch hits per tagged table");
    if (opts.csv)
        std::cout << "CSV,trace,predictor,table,percent\n";

    for (const auto &recipe : opts.selectedTraces()) {
        std::cout << "\n--- " << recipe.name << " ---\n";
        for (const std::string spec : {"tage-15", "bf-tage-10"}) {
            auto source = tracegen::makeSource(recipe, opts.scale);
            auto predictor = createPredictor(opts.modeSpec(spec));
            archive.evaluateRun(recipe.name, *source, *predictor);
            const ProviderStats *stats = predictor->providerStats();
            if (!stats) {
                std::cout << spec << ": no provider stats\n";
                continue;
            }

            // The display numbers come from the telemetry export; the
            // internal ProviderStats must agree counter-for-counter,
            // or the emitTelemetry path is lying.
            telemetry::Telemetry tel;
            predictor->emitTelemetry(tel);
            if (tel.counterValue("tage.predictions") !=
                stats->predictions) {
                std::cerr << "telemetry/ProviderStats mismatch: "
                          << "predictions\n";
                return 1;
            }
            for (size_t t = 0; t < stats->providerCount.size(); ++t) {
                const uint64_t fromTel = tel.counterValue(
                    "tage.provider.t" + std::to_string(t));
                if (fromTel != stats->providerCount[t]) {
                    std::cerr << "telemetry/ProviderStats mismatch: "
                              << "table " << t << " (" << fromTel
                              << " vs " << stats->providerCount[t]
                              << ")\n";
                    return 1;
                }
            }
            std::cout << std::left << std::setw(12) << spec
                      << std::right << " base "
                      << bench::cell(stats->percent(0), 1) << "% |";
            double meanTable = 0.0;
            double taggedPct = 0.0;
            for (size_t t = 1; t < stats->providerCount.size(); ++t) {
                const double pct = stats->percent(t);
                std::cout << " T" << t << ":"
                          << bench::cell(pct, 1);
                meanTable += static_cast<double>(t) * pct;
                taggedPct += pct;
                if (opts.csv) {
                    std::cout << "";
                }
            }
            if (taggedPct > 0.0)
                meanTable /= taggedPct;
            std::cout << " | mean tagged table "
                      << bench::cell(meanTable, 2) << "\n";
            if (opts.csv) {
                for (size_t t = 0; t < stats->providerCount.size();
                     ++t) {
                    std::cout << "CSV," << recipe.name << "," << spec
                              << "," << t << ","
                              << bench::cell(stats->percent(t), 2)
                              << "\n";
                }
            }
        }
    }
    std::cout << "\npaper shape: BF-TAGE's distribution shifts toward "
              << "shorter-history tables\n"
              << "(provider counters cross-checked against the "
              << "emitTelemetry export)\n";
    return archive.finish();
    });
}
