/**
 * @file
 * Figure 11: relative per-trace MPKI improvement over a 10-table
 * conventional TAGE, for (a) the 15-table conventional TAGE and
 * (b) the 10-table BF-TAGE.
 *
 * Paper shape: on the long-history-sensitive traces (SPEC00, 02, 03,
 * 06, 09, 10, 15, 17, INT1, INT4, INT5) the 10-table BF-TAGE closely
 * tracks the 15-table TAGE's improvement; it loses ground on the
 * local-history traces (SPEC07, FP2, MM5) and on server traces
 * (dynamic bias detection churn, worst for SERV3).
 */

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig11_relative", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv,
        "Figure 11: relative MPKI improvement vs 10-table TAGE");

    bench::RunArchive archive("fig11_relative", opts);

    bench::banner(
        "Figure 11: relative improvement in MPKI w.r.t. TAGE-10");
    std::cout << std::left << std::setw(10) << "trace" << std::right
              << std::setw(12) << "tage10" << std::setw(12) << "tage15"
              << std::setw(12) << "bf10" << std::setw(12) << "tage15%"
              << std::setw(12) << "bf10%" << "\n";
    if (opts.csv)
        std::cout << "CSV,trace,tage10_mpki,tage15_pct,bf10_pct\n";

    const std::vector<std::string> specs = {"tage-10", "tage-15",
                                            "bf-tage-10"};
    const auto traces = opts.selectedTraces();
    std::vector<SuiteJob> jobs;
    for (const auto &recipe : traces) {
        for (const auto &spec : specs) {
            SuiteJob job;
            job.traceName = recipe.name;
            job.makeSource = [recipe, scale = opts.scale] {
                return tracegen::makeSource(recipe, scale);
            };
            job.makePredictor = [spec = opts.modeSpec(spec)] {
                return createPredictor(spec);
            };
            jobs.push_back(std::move(job));
        }
    }
    const auto runs = archive.runSuite(std::move(jobs));

    for (size_t t = 0; t < traces.size(); ++t) {
        const double base =
            runs[t * specs.size() + 0].result.mpki();
        const double t15 = runs[t * specs.size() + 1].result.mpki();
        const double bf10 = runs[t * specs.size() + 2].result.mpki();
        const double t15Pct =
            base > 0.0 ? 100.0 * (base - t15) / base : 0.0;
        const double bfPct =
            base > 0.0 ? 100.0 * (base - bf10) / base : 0.0;
        std::cout << std::left << std::setw(10) << traces[t].name
                  << std::right << std::setw(12) << bench::cell(base)
                  << std::setw(12) << bench::cell(t15)
                  << std::setw(12) << bench::cell(bf10)
                  << std::setw(12) << bench::cell(t15Pct, 1)
                  << std::setw(12) << bench::cell(bfPct, 1) << "\n";
        if (opts.csv) {
            std::cout << "CSV," << traces[t].name << ","
                      << bench::cell(base) << ","
                      << bench::cell(t15Pct, 2) << ","
                      << bench::cell(bfPct, 2) << "\n";
        }
    }
    std::cout << "\npaper shape: BF-TAGE-10 tracks TAGE-15 on "
              << "long-history traces; negative bars on SPEC07/FP2/"
              << "MM5/SERV traces\n";
    return archive.finish();
    });
}
