/**
 * @file
 * Figure 2: percentage of completely biased branches per trace.
 *
 * Paper: "Figure 2 demonstrates the presence of biased branches
 * across the traces provided for the 4th Championship Branch
 * Prediction" — values range roughly from 10% to 70%, with the
 * SERV traces and several SPEC traces (02/06/09) at the high end and
 * SPEC03/04/11/12/18 at the low end.
 *
 * A dynamic branch counts as biased when its static branch resolved
 * in a single direction for the whole trace (the BiasOracle
 * definition). Static fractions are reported alongside.
 */

#include "bench_common.hpp"
#include "core/bias_oracle.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig02_bias", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv, "Figure 2: % of biased branches per trace");
    // No predictor runs here; --json still writes a (runs-empty)
    // document so the harness can pass the flag uniformly.
    bench::RunArchive archive("fig02_bias", opts);

    bench::banner("Figure 2: biased branches per trace");
    std::cout << std::left << std::setw(10) << "trace"
              << std::right << std::setw(12) << "dyn-biased%"
              << std::setw(12) << "stat-biased%"
              << std::setw(12) << "static-brs" << "\n";
    if (opts.csv)
        std::cout << "CSV,trace,dynamic_biased_pct,static_biased_pct,"
                  << "static_branches\n";

    double sum = 0.0;
    size_t count = 0;
    for (const auto &recipe : opts.selectedTraces()) {
        auto source = tracegen::makeSource(recipe, opts.scale);
        const BiasOracle oracle = BiasOracle::profile(*source);
        const double dyn = 100.0 * oracle.dynamicBiasedFraction();
        const double stat = 100.0 * oracle.staticBiasedFraction();
        std::cout << std::left << std::setw(10) << recipe.name
                  << std::right << std::setw(12) << bench::cell(dyn, 1)
                  << std::setw(12) << bench::cell(stat, 1)
                  << std::setw(12) << oracle.staticBranches() << "\n";
        if (opts.csv) {
            std::cout << "CSV," << recipe.name << ","
                      << bench::cell(dyn, 2) << ","
                      << bench::cell(stat, 2) << ","
                      << oracle.staticBranches() << "\n";
        }
        sum += dyn;
        ++count;
    }
    if (count > 0) {
        std::cout << std::left << std::setw(10) << "Avg."
                  << std::right << std::setw(12)
                  << bench::cell(sum / static_cast<double>(count), 1)
                  << "\n";
    }
    return archive.finish();
    });
}
