/**
 * @file
 * Microbenchmark: prediction+update throughput per predictor, and
 * the table-access count per prediction that motivates BF-TAGE
 * (Sec. V: fewer tagged tables -> less energy per prediction).
 *
 * Uses google-benchmark. Branch streams are pre-generated so the
 * benchmark measures predictor work only.
 */

#include <benchmark/benchmark.h>

#include "core/factory.hpp"
#include "sim/trace_source.hpp"
#include "tracegen/workloads.hpp"

namespace
{

const std::vector<bfbp::BranchRecord> &
sampleTrace()
{
    static const std::vector<bfbp::BranchRecord> records = [] {
        auto src = bfbp::tracegen::makeSource(
            bfbp::tracegen::recipeByName("SPEC13"), 0.02);
        return bfbp::collect(*src);
    }();
    return records;
}

void
runPredictor(benchmark::State &state, const std::string &spec)
{
    const auto &records = sampleTrace();
    auto predictor = bfbp::createPredictor(spec);
    size_t pos = 0;
    uint64_t predicted = 0;
    for (auto _ : state) {
        const auto &r = records[pos];
        if (r.isConditional()) {
            const bool pred = predictor->predict(r.pc);
            predictor->update(r.pc, r.taken, pred, r.target);
            predicted += pred;
        } else {
            predictor->trackOtherInst(r);
        }
        pos = (pos + 1) % records.size();
    }
    benchmark::DoNotOptimize(predicted);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_Bimodal(benchmark::State &state)
{
    runPredictor(state, "bimodal");
}

void
BM_Gshare(benchmark::State &state)
{
    runPredictor(state, "gshare");
}

void
BM_Pwl(benchmark::State &state)
{
    runPredictor(state, "pwl");
}

void
BM_OhSnap(benchmark::State &state)
{
    runPredictor(state, "oh-snap");
}

void
BM_BfNeural(benchmark::State &state)
{
    runPredictor(state, "bf-neural");
}

void
BM_Tage15(benchmark::State &state)
{
    runPredictor(state, "tage-15");
}

void
BM_IslTage10(benchmark::State &state)
{
    runPredictor(state, "isl-tage-10");
}

void
BM_BfIslTage10(benchmark::State &state)
{
    runPredictor(state, "bf-isl-tage-10");
}

BENCHMARK(BM_Bimodal);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Pwl);
BENCHMARK(BM_OhSnap);
BENCHMARK(BM_BfNeural);
BENCHMARK(BM_Tage15);
BENCHMARK(BM_IslTage10);
BENCHMARK(BM_BfIslTage10);

/**
 * Tagged-table array accesses per prediction: the power argument of
 * Sec. V. Conventional n-table TAGE reads n tagged arrays per
 * prediction; a 10-table BF-TAGE reads 10 where the accuracy-
 * equivalent conventional configuration reads 15.
 */
void
BM_TableAccessesReport(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(state.iterations());
    }
    state.counters["tage15_arrays"] = 15 + 1;
    state.counters["bf_tage10_arrays"] = 10 + 1;
    state.counters["bf_neural_arrays"] = 3; // Wb + Wm + Wrs
}

BENCHMARK(BM_TableAccessesReport)->Iterations(1);

} // anonymous namespace

BENCHMARK_MAIN();
