/**
 * @file
 * Microbenchmark: prediction+update throughput per predictor, and
 * the table-access count per prediction that motivates BF-TAGE
 * (Sec. V: fewer tagged tables -> less energy per prediction).
 *
 * Uses google-benchmark. Branch streams are pre-generated so the
 * benchmark measures predictor work only.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/factory.hpp"
#include "sim/evaluator.hpp"
#include "sim/suite_runner.hpp"
#include "sim/trace_io.hpp"
#include "sim/trace_source.hpp"
#include "tracegen/workloads.hpp"

namespace
{

const std::vector<bfbp::BranchRecord> &
sampleTrace()
{
    static const std::vector<bfbp::BranchRecord> records = [] {
        auto src = bfbp::tracegen::makeSource(
            bfbp::tracegen::recipeByName("SPEC13"), 0.02);
        return bfbp::collect(*src);
    }();
    return records;
}

void
runPredictor(benchmark::State &state, const std::string &spec)
{
    const auto &records = sampleTrace();
    auto predictor = bfbp::createPredictor(spec);
    size_t pos = 0;
    uint64_t predicted = 0;
    for (auto _ : state) {
        const auto &r = records[pos];
        if (r.isConditional()) {
            const bool pred = predictor->predict(r.pc);
            predictor->update(r.pc, r.taken, pred, r.target);
            predicted += pred;
        } else {
            predictor->trackOtherInst(r);
        }
        pos = (pos + 1) % records.size();
    }
    benchmark::DoNotOptimize(predicted);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_Bimodal(benchmark::State &state)
{
    runPredictor(state, "bimodal");
}

void
BM_Gshare(benchmark::State &state)
{
    runPredictor(state, "gshare");
}

void
BM_Pwl(benchmark::State &state)
{
    runPredictor(state, "pwl");
}

void
BM_OhSnap(benchmark::State &state)
{
    runPredictor(state, "oh-snap");
}

void
BM_BfNeural(benchmark::State &state)
{
    runPredictor(state, "bf-neural");
}

void
BM_Tage15(benchmark::State &state)
{
    runPredictor(state, "tage-15");
}

void
BM_Tage15Fast(benchmark::State &state)
{
    runPredictor(state, "tage-15:fast");
}

void
BM_IslTage10(benchmark::State &state)
{
    runPredictor(state, "isl-tage-10");
}

void
BM_IslTage10Fast(benchmark::State &state)
{
    runPredictor(state, "isl-tage-10:fast");
}

void
BM_BfIslTage10(benchmark::State &state)
{
    runPredictor(state, "bf-isl-tage-10");
}

BENCHMARK(BM_Bimodal);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Pwl);
BENCHMARK(BM_OhSnap);
BENCHMARK(BM_BfNeural);
BENCHMARK(BM_Tage15);
BENCHMARK(BM_Tage15Fast);
BENCHMARK(BM_IslTage10);
BENCHMARK(BM_IslTage10Fast);
BENCHMARK(BM_BfIslTage10);

/**
 * End-to-end evaluation throughput over a *file-backed* trace: the
 * whole record path (container read, decode, validation, evaluator
 * loop, predictor) in records per second. This is the number
 * BENCH_throughput.json tracks across PRs (docs/PERFORMANCE.md);
 * the per-iteration work is one full evaluate() of ISL-TAGE over
 * the archived SPEC13 trace, so items/second == records/second.
 */
const std::string &
evalTracePath(bfbp::TraceFormat format)
{
    static const auto make = [](bfbp::TraceFormat fmt,
                                const char *name) {
        const std::string p =
            (std::filesystem::temp_directory_path() / name).string();
        auto src = bfbp::tracegen::makeSource(
            bfbp::tracegen::recipeByName("SPEC13"), 0.5);
        bfbp::TraceFileWriter writer(p, fmt);
        bfbp::BranchRecord r;
        while (src->next(r))
            writer.append(r);
        writer.close();
        return p;
    };
    static const std::string v1 =
        make(bfbp::TraceFormat::V1, "bfbp_bm_evaluate.trace");
    static const std::string v2 =
        make(bfbp::TraceFormat::V2, "bfbp_bm_evaluate_v2.trace");
    return format == bfbp::TraceFormat::V2 ? v2 : v1;
}

void
runEvaluateFile(benchmark::State &state, const std::string &spec,
                bool per_branch,
                bfbp::TraceFormat format = bfbp::TraceFormat::V1,
                unsigned lookahead = 0)
{
    const std::string &path = evalTracePath(format);
    uint64_t records = 0;
    uint64_t mispredicts = 0;
    for (auto _ : state) {
        bfbp::TraceFileSource source(path);
        auto predictor = bfbp::createPredictor(spec);
        bfbp::EvalOptions options;
        options.collectPerBranch = per_branch;
        options.lookahead = lookahead;
        const auto result = bfbp::evaluate(source, *predictor, options);
        mispredicts = result.mispredictions;
        records = source.recordCount();
        benchmark::DoNotOptimize(mispredicts);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * records));
    state.counters["mispredict_checksum"] =
        static_cast<double>(mispredicts);
}

void
BM_Evaluate(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10", false);
}

/** BM_Evaluate with the same predictor in fast semantics mode
 *  (":fast": SWAR folds, fused hashing, batched SC — the opt-in
 *  throughput path of docs/PERFORMANCE.md). Registered directly
 *  after BM_Evaluate so every run measures the pair back to back on
 *  the same machine state; BENCH_throughput.json records both and
 *  tools/check_bench_regression.py holds each to its own floor. */
void
BM_EvaluateFast(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10:fast", false);
}

void
BM_EvaluatePerBranch(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10", true);
}

/**
 * BM_Evaluate with the trace-driven lookahead pipeline armed
 * (EvalOptions::lookahead = 16, the depth the CI determinism gate
 * runs): the evaluator announces upcoming branches so the predictor
 * precomputes indices and prefetches every tagged-table line before
 * its predict(). Results (the mispredict_checksum counter) are
 * byte-identical to BM_Evaluate — only the wall clock may move.
 */
void
BM_EvaluateLookahead(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10", false,
                    bfbp::TraceFormat::V1, 16);
}

/** The lookahead pipeline over the fast-semantics predictor. */
void
BM_EvaluateFastLookahead(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10:fast", false,
                    bfbp::TraceFormat::V1, 16);
}

/** BM_Evaluate over the v2 container: same records, but every block
 *  is checksum-verified and delta-decoded on the way in. The gap to
 *  BM_Evaluate is the read-side cost of end-to-end integrity. */
void
BM_EvaluateV2(benchmark::State &state)
{
    runEvaluateFile(state, "isl-tage-10", false,
                    bfbp::TraceFormat::V2);
}

/** The trace-archive write path (pack + buffered fwrite; v2 adds
 *  delta encoding + checksumming), records per second; reads back
 *  through the evaluate path are BM_Evaluate / BM_EvaluateV2. */
void
runTraceWrite(benchmark::State &state, bfbp::TraceFormat format)
{
    const auto &records = sampleTrace();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "bfbp_bm_tracewrite.trace")
            .string();
    for (auto _ : state) {
        bfbp::TraceFileWriter writer(path, format);
        for (const auto &r : records)
            writer.append(r);
        writer.close();
        benchmark::DoNotOptimize(writer.written());
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * records.size()));
}

void
BM_TraceWrite(benchmark::State &state)
{
    runTraceWrite(state, bfbp::TraceFormat::V1);
}

void
BM_TraceWriteV2(benchmark::State &state)
{
    runTraceWrite(state, bfbp::TraceFormat::V2);
}

BENCHMARK(BM_Evaluate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateFast)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateLookahead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateFastLookahead)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluatePerBranch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateV2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceWrite)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceWriteV2)->Unit(benchmark::kMillisecond);

/**
 * Suite-runner scaling: a small (trace x predictor) matrix submitted
 * as SuiteJobs at 1, 2 and 4 workers. Wall time per iteration is the
 * whole batch, so the items/second ratio between worker counts is
 * the thread-pool speedup (expect ~flat on single-core machines).
 * The result checksum guards the determinism contract: every worker
 * count must produce identical mispredictions.
 */
void
BM_SuiteRunner(benchmark::State &state)
{
    const std::vector<std::string> traceNames = {"SPEC00", "SPEC13",
                                                 "MM1", "SERV1"};
    const std::vector<std::string> specs = {"gshare", "oh-snap"};
    std::vector<bfbp::SuiteJob> jobs;
    for (const auto &traceName : traceNames) {
        const auto recipe = bfbp::tracegen::recipeByName(traceName);
        for (const auto &spec : specs) {
            bfbp::SuiteJob job;
            job.traceName = traceName;
            job.makeSource = [recipe] {
                return bfbp::tracegen::makeSource(recipe, 0.05);
            };
            job.makePredictor = [spec] {
                return bfbp::createPredictor(spec);
            };
            jobs.push_back(std::move(job));
        }
    }

    const bfbp::SuiteRunner runner(
        static_cast<unsigned>(state.range(0)));
    uint64_t checksum = 0;
    for (auto _ : state) {
        const auto outcomes = runner.run(jobs);
        checksum = 0;
        for (const auto &o : outcomes)
            checksum += o.result.mispredictions;
        benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * jobs.size()));
    state.counters["mispredict_checksum"] =
        static_cast<double>(checksum);
    state.counters["workers"] =
        static_cast<double>(runner.workerCount());
}

// Real time, not CPU time: the main thread sleeps in the pool join,
// so CPU time would read near-zero for every multi-worker run.
BENCHMARK(BM_SuiteRunner)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/**
 * Tagged-table array accesses per prediction: the power argument of
 * Sec. V. Conventional n-table TAGE reads n tagged arrays per
 * prediction; a 10-table BF-TAGE reads 10 where the accuracy-
 * equivalent conventional configuration reads 15.
 */
void
BM_TableAccessesReport(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(state.iterations());
    }
    state.counters["tage15_arrays"] = 15 + 1;
    state.counters["bf_tage10_arrays"] = 10 + 1;
    state.counters["bf_neural_arrays"] = 3; // Wb + Wm + Wrs
}

BENCHMARK(BM_TableAccessesReport)->Iterations(1);

} // anonymous namespace

BENCHMARK_MAIN();
