/**
 * @file
 * Figure 8: per-trace MPKI of OH-SNAP, TAGE (ISL-TAGE without SC and
 * IUM, 15 tagged tables, with loop predictor) and BF-Neural (with
 * loop predictor), all at a ~64 KB budget.
 *
 * Paper numbers: OH-SNAP 2.63 MPKI, TAGE 2.445 MPKI, BF-Neural 2.49
 * MPKI average over the 40 traces; BF-Neural improves 5.32% over
 * OH-SNAP and is comparable to TAGE.
 */

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig08_mpki", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv,
        "Figure 8: MPKI comparison (OH-SNAP vs TAGE vs BF-Neural)");

    const std::vector<std::string> predictors = {"oh-snap", "tage-15",
                                                 "bf-neural"};
    bench::RunArchive archive("fig08_mpki", opts);

    // Submit the whole (trace, predictor) matrix up front; the
    // runner returns outcomes in submission order, so the table
    // below is byte-identical at any --jobs count.
    const auto traces = opts.selectedTraces();
    std::vector<SuiteJob> jobs;
    for (const auto &recipe : traces) {
        for (const auto &spec : predictors) {
            SuiteJob job;
            job.traceName = recipe.name;
            job.makeSource = [recipe, scale = opts.scale] {
                return tracegen::makeSource(recipe, scale);
            };
            job.makePredictor = [spec = opts.modeSpec(spec)] {
                return createPredictor(spec);
            };
            jobs.push_back(std::move(job));
        }
    }
    const auto runs = archive.runSuite(std::move(jobs));

    bench::banner("Figure 8: MPKI comparison at 64 KB");
    std::cout << std::left << std::setw(10) << "trace" << std::right;
    for (const auto &name : predictors)
        std::cout << std::setw(12) << name;
    std::cout << std::setw(10) << "secs" << "\n";
    if (opts.csv)
        std::cout << "CSV,trace,oh_snap,tage_15,bf_neural,seconds\n";

    std::vector<double> sums(predictors.size(), 0.0);
    size_t count = 0;
    for (size_t t = 0; t < traces.size(); ++t) {
        std::cout << std::left << std::setw(10) << traces[t].name
                  << std::right;
        std::vector<double> row;
        double traceSeconds = 0.0;
        for (size_t i = 0; i < predictors.size(); ++i) {
            const bench::BenchRun &run =
                runs[t * predictors.size() + i];
            sums[i] += run.result.mpki();
            row.push_back(run.result.mpki());
            traceSeconds += run.seconds;
            std::cout << std::setw(12)
                      << bench::cell(run.result.mpki());
        }
        std::cout << std::setw(10) << bench::cell(traceSeconds, 2)
                  << "\n";
        if (opts.csv) {
            std::cout << "CSV," << traces[t].name;
            for (double v : row)
                std::cout << "," << bench::cell(v);
            std::cout << "," << bench::cell(traceSeconds, 3) << "\n";
        }
        ++count;
    }

    if (count > 0) {
        std::cout << std::left << std::setw(10) << "Avg."
                  << std::right;
        for (double s : sums) {
            std::cout << std::setw(12)
                      << bench::cell(s / static_cast<double>(count));
        }
        std::cout << "\n\npaper (full-size CBP-4 traces): "
                  << "OH-SNAP 2.63, TAGE 2.445, BF-Neural 2.49\n";
    }
    return archive.finish();
    });
}
