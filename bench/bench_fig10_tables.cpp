/**
 * @file
 * Figure 10: average MPKI vs number of tagged tables, ISL-TAGE vs
 * BF-ISL-TAGE (both with loop predictor, statistical corrector and
 * IUM), 4 to 10 tagged tables.
 *
 * Paper shape: BF-ISL-TAGE is consistently more accurate for small
 * to moderate table counts (e.g. 7 tables: 2.57 vs 2.73 MPKI) with
 * the gap closing by 10 tables.
 */

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig10_tables", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv,
        "Figure 10: avg MPKI for 4..10 tagged tables "
        "(ISL-TAGE vs BF-ISL-TAGE)");

    bench::RunArchive archive("fig10_tables", opts);

    bench::banner("Figure 10: MPKI vs number of tagged tables");
    std::cout << std::left << std::setw(8) << "tables" << std::right
              << std::setw(12) << "isl-tage" << std::setw(14)
              << "bf-isl-tage" << std::setw(12) << "isl-KiB"
              << std::setw(12) << "bf-KiB" << "\n";
    if (opts.csv)
        std::cout << "CSV,tables,isl_tage,bf_isl_tage\n";

    const auto traces = opts.selectedTraces();

    std::vector<SuiteJob> jobs;
    for (unsigned tables = 4; tables <= 10; ++tables) {
        for (const auto &recipe : traces) {
            SuiteJob isl;
            isl.traceName = recipe.name;
            isl.makeSource = [recipe, scale = opts.scale] {
                return tracegen::makeSource(recipe, scale);
            };
            isl.makePredictor = [tables, mode = opts.mode()] {
                return makeIslTage(tables, mode);
            };
            jobs.push_back(std::move(isl));

            SuiteJob bf;
            bf.traceName = recipe.name;
            bf.makeSource = [recipe, scale = opts.scale] {
                return tracegen::makeSource(recipe, scale);
            };
            // BF-ISL-TAGE has no dedicated fast path; the spec route
            // still applies the mode tag so a --fast run's labels are
            // consistent across both columns.
            bf.makePredictor = [spec = opts.modeSpec(
                                    "bf-isl-tage-" +
                                    std::to_string(tables))] {
                return createPredictor(spec);
            };
            jobs.push_back(std::move(bf));
        }
    }
    const auto runs = archive.runSuite(std::move(jobs));

    for (unsigned tables = 4; tables <= 10; ++tables) {
        double islSum = 0.0;
        double bfSum = 0.0;
        uint64_t islBytes = 0;
        uint64_t bfBytes = 0;
        const size_t base = (tables - 4) * traces.size() * 2;
        for (size_t t = 0; t < traces.size(); ++t) {
            const bench::BenchRun &isl = runs[base + 2 * t];
            const bench::BenchRun &bf = runs[base + 2 * t + 1];
            islBytes = (isl.storageBits + 7) / 8;
            islSum += isl.result.mpki();
            bfBytes = (bf.storageBits + 7) / 8;
            bfSum += bf.result.mpki();
        }
        const double n = static_cast<double>(traces.size());
        std::cout << std::left << std::setw(8) << tables << std::right
                  << std::setw(12) << bench::cell(islSum / n)
                  << std::setw(14) << bench::cell(bfSum / n)
                  << std::setw(12) << islBytes / 1024
                  << std::setw(12) << bfBytes / 1024 << "\n";
        if (opts.csv) {
            std::cout << "CSV," << tables << ","
                      << bench::cell(islSum / n) << ","
                      << bench::cell(bfSum / n) << "\n";
        }
    }
    std::cout << "\npaper shape: BF ahead for 4..9 tables "
              << "(7 tables: 2.57 vs 2.73), converging at 10\n";
    return archive.finish();
    });
}
