/**
 * @file
 * Figure 9: contribution of the individual BF-Neural optimizations.
 *
 * Four configurations, as in the paper:
 *  1. "Conventional Perceptron" — the 64 KB hashed piecewise-linear
 *     predictor with history length 72.
 *  2. "BF-Neural (fhist)" — BST detection gates biased branches away
 *     from the weight tables, but they still enter the history.
 *  3. "BF-Neural (ghist bias-free + fhist)" — biased branches also
 *     filtered from the history (plain filtered shift register).
 *  4. "BF-Neural (ghist bias-free + RS + fhist)" — full predictor
 *     with the recency stack.
 *
 * Paper averages: 3.28 -> 2.67 -> 2.59 -> 2.49 MPKI.
 */

#include <functional>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

namespace
{

bfbp::BfNeuralConfig
variant(bool filter_history, bool use_rs)
{
    bfbp::BfNeuralConfig cfg;
    cfg.filterHistory = filter_history;
    cfg.useRecencyStack = use_rs;
    return cfg;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_fig09_ablation", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv, "Figure 9: BF-Neural optimization breakdown");

    struct Column
    {
        std::string label;
        std::function<std::unique_ptr<BranchPredictor>()> make;
    };
    const std::vector<Column> columns = {
        {"conv-pwl", [] { return makeConventionalPerceptron(); }},
        {"bst+fhist", [] { return makeBfNeural(variant(false, false)); }},
        {"+ghist-bf", [] { return makeBfNeural(variant(true, false)); }},
        {"+RS", [] { return makeBfNeural(variant(true, true)); }},
    };
    bench::RunArchive archive("fig09_ablation", opts);

    const auto traces = opts.selectedTraces();
    std::vector<SuiteJob> jobs;
    for (const auto &recipe : traces) {
        for (const auto &column : columns) {
            SuiteJob job;
            job.traceName = recipe.name;
            job.predictorLabel = column.label;
            job.makeSource = [recipe, scale = opts.scale] {
                return tracegen::makeSource(recipe, scale);
            };
            job.makePredictor = column.make;
            jobs.push_back(std::move(job));
        }
    }
    const auto runs = archive.runSuite(std::move(jobs));

    bench::banner("Figure 9: contribution of optimizations (MPKI)");
    std::cout << std::left << std::setw(10) << "trace" << std::right;
    for (const auto &c : columns)
        std::cout << std::setw(12) << c.label;
    std::cout << "\n";
    if (opts.csv)
        std::cout << "CSV,trace,conv_pwl,bst_fhist,ghist_bf,rs\n";

    std::vector<double> sums(columns.size(), 0.0);
    size_t count = 0;
    for (size_t t = 0; t < traces.size(); ++t) {
        std::cout << std::left << std::setw(10) << traces[t].name
                  << std::right;
        std::vector<double> row;
        for (size_t i = 0; i < columns.size(); ++i) {
            const EvalResult &res =
                runs[t * columns.size() + i].result;
            sums[i] += res.mpki();
            row.push_back(res.mpki());
            std::cout << std::setw(12) << bench::cell(res.mpki());
        }
        std::cout << "\n";
        if (opts.csv) {
            std::cout << "CSV," << traces[t].name;
            for (double v : row)
                std::cout << "," << bench::cell(v);
            std::cout << "\n";
        }
        ++count;
    }

    if (count > 0) {
        std::cout << std::left << std::setw(10) << "Avg."
                  << std::right;
        for (double s : sums) {
            std::cout << std::setw(12)
                      << bench::cell(s / static_cast<double>(count));
        }
        std::cout << "\n\npaper (full-size CBP-4 traces): "
                  << "3.28 -> 2.67 -> 2.59 -> 2.49\n";
    }
    return archive.finish();
    });
}
