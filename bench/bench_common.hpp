/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Every bench accepts:
 *   --scale X    trace length multiplier (default: BFBP_TRACE_SCALE
 *                environment variable, else 1.0)
 *   --traces A,B comma-separated trace-name filter (default: all 40)
 *   --csv        machine-readable output in addition to the table
 *   --help       usage
 */

#ifndef BFBP_BENCH_COMMON_HPP
#define BFBP_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tracegen/workloads.hpp"

namespace bfbp::bench
{

/** Parsed command line shared by all harness binaries. */
struct Options
{
    double scale = tracegen::envTraceScale();
    std::vector<std::string> traces; //!< Empty = whole suite.
    bool csv = false;

    static Options
    parse(int argc, char **argv, const std::string &description)
    {
        Options opts;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--scale" && i + 1 < argc) {
                opts.scale = std::atof(argv[++i]);
            } else if (arg == "--traces" && i + 1 < argc) {
                std::stringstream ss(argv[++i]);
                std::string name;
                while (std::getline(ss, name, ','))
                    opts.traces.push_back(name);
            } else if (arg == "--csv") {
                opts.csv = true;
            } else if (arg == "--help" || arg == "-h") {
                std::cout << description << "\n\n"
                          << "options:\n"
                          << "  --scale X     trace length multiplier "
                          << "(default BFBP_TRACE_SCALE or 1.0)\n"
                          << "  --traces A,B  restrict to named traces\n"
                          << "  --csv         also print CSV rows\n";
                std::exit(0);
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                std::exit(2);
            }
        }
        return opts;
    }

    /** The selected suite subset, in suite order. */
    std::vector<tracegen::TraceRecipe>
    selectedTraces() const
    {
        std::vector<tracegen::TraceRecipe> out;
        for (const auto &r : tracegen::standardSuite()) {
            if (traces.empty() ||
                std::find(traces.begin(), traces.end(), r.name) !=
                    traces.end()) {
                out.push_back(r);
            }
        }
        return out;
    }
};

/** Prints a right-aligned numeric cell. */
inline std::string
cell(double value, int precision = 3)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

/** Prints a header banner for a bench. */
inline void
banner(const std::string &title)
{
    std::cout << "==== " << title << " ====\n";
}

} // namespace bfbp::bench

#endif // BFBP_BENCH_COMMON_HPP
