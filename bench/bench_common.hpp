/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Every bench accepts:
 *   --scale X     trace length multiplier (default: BFBP_TRACE_SCALE
 *                 environment variable, else 1.0); must be > 0
 *   --traces A,B  comma-separated trace-name filter (default: all 40);
 *                 empty components are skipped, duplicates rejected
 *   --jobs N      worker threads for the suite runner (default 1 =
 *                 serial; 0 = all hardware threads). Results and all
 *                 output are byte-identical at any worker count
 *                 (wall-clock timing excepted).
 *   --fast        run every spec-built predictor in fast semantics
 *                 mode (the ":fast" spec suffix: SWAR folds, fused
 *                 hashing — docs/PERFORMANCE.md); predictor names
 *                 and archive labels carry the ":fast" tag
 *   --csv         machine-readable output in addition to the table
 *   --json FILE   archive every run (summary, timing, counters,
 *                 interval series) as a bfbp-telemetry-v1 document
 *   --interval N  with --json (required): record windowed MPKI every
 *                 N conditional branches
 *   --checkpoint-dir D  persist per-job outcomes and mid-trace
 *                 predictor snapshots under D/<suite>/ so a killed
 *                 run can be restarted (docs/SERIALIZATION.md)
 *   --resume      with --checkpoint-dir (required): skip jobs whose
 *                 outcome is already persisted, resume in-flight
 *                 evaluations from their mid-trace checkpoint
 *   --dump-traces D  archive each evaluated trace under D before the
 *                 suite runs (one ".trace" file per trace name)
 *   --trace-v2    with --dump-traces (required): write the dumps in
 *                 the v2 container — checksummed, delta-compressed,
 *                 seekable (docs/SERIALIZATION.md)
 *   --help        usage
 *
 * RunArchive is the bridge between the evaluator and the telemetry
 * sinks: it runs one (trace, predictor) evaluation, converts the
 * EvalResult into a telemetry::RunRecord, and writes the collected
 * records as one JSON document when --json is active. Without
 * --json, evaluations run with a null telemetry pointer, so results
 * are bit-identical to a build without telemetry.
 *
 * Suite benches submit their whole (trace, predictor) matrix as
 * SuiteJobs through RunArchive::runSuite(), which schedules them on a
 * SuiteRunner thread pool (--jobs) and archives the outcomes in
 * submission order — each job evaluates into its own telemetry sink,
 * so the archived document is identical to a serial run's.
 */

#ifndef BFBP_BENCH_COMMON_HPP
#define BFBP_BENCH_COMMON_HPP

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/evaluator.hpp"
#include "sim/predictor.hpp"
#include "sim/predictor_mode.hpp"
#include "sim/snapshot.hpp"
#include "sim/suite_runner.hpp"
#include "sim/trace_io.hpp"
#include "telemetry/h2p.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/tracing.hpp"
#include "tracegen/workloads.hpp"
#include "util/errors.hpp"

namespace bfbp::bench
{

/**
 * Top-level exception guard every harness main() runs inside.
 *
 * A BfbpError (bad config, corrupt trace, evaluation fault) becomes
 * a one-line diagnostic on stderr and exit code 2 — the same
 * contract as the --scale/--traces argument validation — instead of
 * an std::terminate that aborts a whole suite run with no hint of
 * which input was at fault.
 */
template <typename Fn>
int
guardedMain(const char *tool, Fn &&body)
{
    try {
        return body();
    } catch (const BfbpError &e) {
        std::cerr << tool << ": error: " << e.what() << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << tool << ": unexpected error: " << e.what()
                  << "\n";
        return 2;
    }
}

/** Parsed command line shared by all harness binaries. */
struct Options
{
    double scale = tracegen::envTraceScale();
    std::vector<std::string> traces; //!< Empty = whole suite.
    unsigned jobs = 1;     //!< --jobs workers; 0 = hardware threads.
    bool fast = false;     //!< --fast: ":fast" semantics mode.
    bool csv = false;
    std::string jsonPath;  //!< --json destination; empty = off.
    uint64_t interval = 0; //!< --interval window, 0 = no series.
    std::string checkpointDir; //!< --checkpoint-dir; empty = off.
    bool resume = false;       //!< --resume a checkpointed suite run.
    std::string warmupDir;     //!< --warmup-snapshot; empty = off.
    std::string traceOut;      //!< --trace-out span trace; empty = off.
    bool h2pReport = false;    //!< --h2p-report per-branch H2P report.
    uint64_t h2pTop = 64;      //!< --h2p-top table size.
    std::string heartbeatPath; //!< --heartbeat file; empty = off.
    double heartbeatInterval = 1.0; //!< --heartbeat-interval seconds.
    std::string dumpTracesDir; //!< --dump-traces dir; empty = off.
    bool traceV2 = false;      //!< --trace-v2 container for dumps.
    unsigned lookahead = 0;    //!< --lookahead prefetch depth; 0 = off.

    static Options
    parse(int argc, char **argv, const std::string &description)
    {
        Options opts;
        bool h2pTopSet = false;
        bool heartbeatIntervalSet = false;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--scale" && i + 1 < argc) {
                opts.scale = parseScale(argv[++i]);
            } else if (arg == "--traces" && i + 1 < argc) {
                // Tolerate stray commas (",A", "A,,B", "A,"); reject
                // duplicates, which would otherwise silently run the
                // trace once, and lists with no names at all.
                const char *list = argv[++i];
                std::stringstream ss(list);
                std::string name;
                bool any = false;
                while (std::getline(ss, name, ',')) {
                    if (name.empty())
                        continue;
                    // Trace names are joined into --dump-traces /
                    // --warmup-snapshot paths, so a name carrying a
                    // path separator or a ".." component would write
                    // outside the chosen directory. Reject before
                    // any path is formed (unknown names are caught
                    // later by selectedTraces()).
                    if (name.find('/') != std::string::npos ||
                        name.find('\\') != std::string::npos ||
                        name.find("..") != std::string::npos) {
                        std::cerr << "invalid --traces name '" << name
                                  << "': path separators and '..' "
                                  << "are not allowed\n";
                        std::exit(2);
                    }
                    if (std::find(opts.traces.begin(),
                                  opts.traces.end(),
                                  name) != opts.traces.end()) {
                        std::cerr << "duplicate trace: " << name
                                  << "\n";
                        std::exit(2);
                    }
                    opts.traces.push_back(name);
                    any = true;
                }
                if (!any) {
                    std::cerr << "invalid --traces '" << list
                              << "': no trace names given\n";
                    std::exit(2);
                }
            } else if (arg == "--jobs" && i + 1 < argc) {
                opts.jobs = parseJobs(argv[++i]);
            } else if (arg == "--fast") {
                opts.fast = true;
            } else if (arg == "--csv") {
                opts.csv = true;
            } else if (arg == "--json" && i + 1 < argc) {
                opts.jsonPath = argv[++i];
            } else if (arg == "--interval" && i + 1 < argc) {
                opts.interval = parseInterval(argv[++i]);
            } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
                opts.checkpointDir = argv[++i];
            } else if (arg == "--resume") {
                opts.resume = true;
            } else if (arg == "--warmup-snapshot" && i + 1 < argc) {
                opts.warmupDir = argv[++i];
            } else if (arg == "--trace-out" && i + 1 < argc) {
                opts.traceOut = argv[++i];
            } else if (arg == "--h2p-report") {
                opts.h2pReport = true;
            } else if (arg == "--h2p-top" && i + 1 < argc) {
                opts.h2pTop = parseH2pTop(argv[++i]);
                h2pTopSet = true;
            } else if (arg == "--heartbeat" && i + 1 < argc) {
                opts.heartbeatPath = argv[++i];
            } else if (arg == "--heartbeat-interval" && i + 1 < argc) {
                opts.heartbeatInterval =
                    parseSeconds(argv[++i], "--heartbeat-interval");
                heartbeatIntervalSet = true;
            } else if (arg == "--dump-traces" && i + 1 < argc) {
                opts.dumpTracesDir = argv[++i];
            } else if (arg == "--trace-v2") {
                opts.traceV2 = true;
            } else if (arg == "--lookahead" && i + 1 < argc) {
                opts.lookahead = parseLookahead(argv[++i]);
            } else if (arg == "--help" || arg == "-h") {
                std::cout << description << "\n\n"
                          << "options:\n"
                          << "  --scale X     trace length multiplier "
                          << "(default BFBP_TRACE_SCALE or 1.0)\n"
                          << "  --traces A,B  restrict to named traces\n"
                          << "  --jobs N      evaluation worker threads "
                          << "(default 1 = serial, 0 = all hardware "
                          << "threads)\n"
                          << "  --fast        fast semantics mode for "
                          << "spec-built predictors (':fast' suffix; "
                          << "docs/PERFORMANCE.md)\n"
                          << "  --csv         also print CSV rows\n"
                          << "  --json FILE   write run telemetry as "
                          << "JSON (schema bfbp-telemetry-v1)\n"
                          << "  --interval N  windowed MPKI series "
                          << "every N cond branches (requires --json)\n"
                          << "  --checkpoint-dir D  persist per-job "
                          << "outcomes and mid-trace predictor "
                          << "snapshots under D\n"
                          << "  --resume      skip finished jobs and "
                          << "resume in-flight ones from "
                          << "--checkpoint-dir\n"
                          << "  --warmup-snapshot D  warm each (trace, "
                          << "predictor) pair once, snapshot the "
                          << "warmed state under D, and restore it on "
                          << "later runs instead of re-warming "
                          << "(docs/PERFORMANCE.md; changes the "
                          << "measured region to post-warmup)\n"
                          << "  --trace-out FILE  export a span trace "
                          << "of the run as Chrome Trace Event JSON "
                          << "(load in https://ui.perfetto.dev)\n"
                          << "  --h2p-report  rank hard-to-predict "
                          << "static branches per run and embed the "
                          << "report in the JSON document (requires "
                          << "--json)\n"
                          << "  --h2p-top N   H2P table size "
                          << "(default 64; requires --h2p-report)\n"
                          << "  --heartbeat FILE  rewrite FILE "
                          << "atomically with live per-job progress "
                          << "while the suite runs (JSONL, schema "
                          << "bfbp-heartbeat-v1)\n"
                          << "  --heartbeat-interval S  seconds "
                          << "between heartbeats (default 1.0; "
                          << "requires --heartbeat)\n"
                          << "  --dump-traces D  archive each "
                          << "evaluated trace under D before the "
                          << "suite runs (docs/SERIALIZATION.md)\n"
                          << "  --trace-v2    write dumped traces in "
                          << "the v2 container (checksummed, "
                          << "compressed, seekable; requires "
                          << "--dump-traces)\n"
                          << "  --lookahead N trace-driven prefetch "
                          << "depth: precompute and prefetch table "
                          << "lookups N branches ahead (0 = off; "
                          << "results are byte-identical at any "
                          << "depth — docs/PERFORMANCE.md)\n";
                std::exit(0);
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                std::exit(2);
            }
        }
        // The interval series only exists inside the JSON document;
        // accepting --interval without --json would silently record
        // nothing.
        if (opts.interval != 0 && opts.jsonPath.empty()) {
            std::cerr << "--interval requires --json: the windowed "
                      << "series is only emitted into the JSON "
                      << "document\n";
            std::exit(2);
        }
        // Resuming without a directory has nothing to resume from.
        if (opts.resume && opts.checkpointDir.empty()) {
            std::cerr << "--resume requires --checkpoint-dir: "
                      << "checkpoints live in the checkpoint "
                      << "directory\n";
            std::exit(2);
        }
        // Like --interval: the H2P report only lives inside the JSON
        // document (and the derived CSV).
        if (opts.h2pReport && opts.jsonPath.empty()) {
            std::cerr << "--h2p-report requires --json: the report is "
                      << "only emitted into the JSON document\n";
            std::exit(2);
        }
        if (h2pTopSet && !opts.h2pReport) {
            std::cerr << "--h2p-top requires --h2p-report\n";
            std::exit(2);
        }
        if (heartbeatIntervalSet && opts.heartbeatPath.empty()) {
            std::cerr << "--heartbeat-interval requires --heartbeat\n";
            std::exit(2);
        }
        if (opts.traceV2 && opts.dumpTracesDir.empty()) {
            std::cerr << "--trace-v2 requires --dump-traces: it "
                      << "selects the container for dumped traces\n";
            std::exit(2);
        }
        return opts;
    }

    /**
     * The selected suite subset, in suite order. Names resolve
     * across the standard and extended suites, but the empty default
     * stays the standard 40 traces — extended families (H2P*, LOAD*,
     * ANA*) are opt-in by explicit naming. Exits with an error
     * listing the valid names when a requested trace does not exist.
     */
    std::vector<tracegen::TraceRecipe>
    selectedTraces() const
    {
        const auto suite = traces.empty() ? tracegen::standardSuite()
                                          : tracegen::allRecipes();
        for (const auto &want : traces) {
            const bool known = std::any_of(
                suite.begin(), suite.end(),
                [&](const auto &r) { return r.name == want; });
            if (!known) {
                std::cerr << "unknown trace: " << want
                          << "\nvalid traces:";
                for (const auto &r : suite)
                    std::cerr << " " << r.name;
                std::cerr << "\n";
                std::exit(2);
            }
        }
        std::vector<tracegen::TraceRecipe> out;
        for (const auto &r : suite) {
            if (traces.empty() ||
                std::find(traces.begin(), traces.end(), r.name) !=
                    traces.end()) {
                out.push_back(r);
            }
        }
        return out;
    }

    /** Applies --fast to a base predictor spec: "tage-15" becomes
     *  "tage-15:fast" under --fast, and is returned unchanged
     *  otherwise. Benches route every spec they evaluate through
     *  this, so one flag switches the whole matrix. */
    std::string
    modeSpec(const std::string &base_spec) const
    {
        return fast ? base_spec + ":fast" : base_spec;
    }

    /** The PredictorMode --fast selects (for direct factory calls). */
    PredictorMode
    mode() const
    {
        return fast ? PredictorMode::Fast : PredictorMode::Reference;
    }

  private:
    static double
    parseScale(const char *text)
    {
        char *end = nullptr;
        errno = 0;
        const double value = std::strtod(text, &end);
        // !(value > 0) also rejects NaN.
        if (end == text || *end != '\0' || errno == ERANGE ||
            !(value > 0.0)) {
            std::cerr << "invalid --scale '" << text
                      << "': expected a positive number\n";
            std::exit(2);
        }
        return value;
    }

    static uint64_t
    parseInterval(const char *text)
    {
        char *end = nullptr;
        errno = 0;
        const unsigned long long value = std::strtoull(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE ||
            text[0] == '-') {
            std::cerr << "invalid --interval '" << text
                      << "': expected a non-negative integer\n";
            std::exit(2);
        }
        return value;
    }

    static uint64_t
    parseH2pTop(const char *text)
    {
        char *end = nullptr;
        errno = 0;
        const unsigned long long value = std::strtoull(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE ||
            text[0] == '-' || value == 0) {
            std::cerr << "invalid --h2p-top '" << text
                      << "': expected a positive integer\n";
            std::exit(2);
        }
        return value;
    }

    static double
    parseSeconds(const char *text, const char *flag)
    {
        char *end = nullptr;
        errno = 0;
        const double value = std::strtod(text, &end);
        if (end == text || *end != '\0' || errno == ERANGE ||
            !(value > 0.0)) {
            std::cerr << "invalid " << flag << " '" << text
                      << "': expected a positive number of seconds\n";
            std::exit(2);
        }
        return value;
    }

    static unsigned
    parseLookahead(const char *text)
    {
        char *end = nullptr;
        errno = 0;
        const unsigned long long value = std::strtoull(text, &end, 10);
        // The evaluator clamps to its record block anyway; 1<<20
        // bounds obvious typos.
        if (end == text || *end != '\0' || errno == ERANGE ||
            text[0] == '-' || value > (1ull << 20)) {
            std::cerr << "invalid --lookahead '" << text
                      << "': expected an integer in [0, 1048576] "
                      << "(0 = off)\n";
            std::exit(2);
        }
        return static_cast<unsigned>(value);
    }

    static unsigned
    parseJobs(const char *text)
    {
        char *end = nullptr;
        errno = 0;
        const unsigned long long value = std::strtoull(text, &end, 10);
        // strtoull wraps "-1" to ULLONG_MAX-ish, hence the explicit
        // sign check; 1024 bounds obvious typos, not real machines.
        if (end == text || *end != '\0' || errno == ERANGE ||
            text[0] == '-' || value > 1024) {
            std::cerr << "invalid --jobs '" << text
                      << "': expected an integer in [0, 1024] "
                      << "(0 = all hardware threads)\n";
            std::exit(2);
        }
        return static_cast<unsigned>(value);
    }
};

/**
 * Snapshot-backed predictor warmup for suite benches
 * (--warmup-snapshot, docs/PERFORMANCE.md).
 *
 * The first run of a (trace, predictor-label) pair evaluates
 * warmupBranches conditional branches to train the predictor, then
 * snapshots the warmed state (a "bench-warmup" envelope) into the
 * cache directory. Later runs — typically ablation sweeps forking
 * what-if configurations from a shared baseline, or repeated
 * invocations of the same bench — restore the snapshot and bulk
 * fast-forward the source past the warmup records instead of
 * re-evaluating them. Restored-vs-rewarmed runs are byte-identical.
 *
 * Identical-config requirement: a snapshot can only be restored into
 * a predictor configured exactly as the one that produced it. The
 * cache keys on (suite, trace, label, scale, warmup length) and
 * cross-checks the stored predictor name(), but two *different*
 * configurations sharing one label in one suite would collide —
 * benches must keep labels unique per configuration (all bundled
 * benches do), and a stale cache directory must be deleted after any
 * configuration change that does not change the label.
 */
class WarmupCache
{
  public:
    /** Conditional branches of predictor warmup per pair at --scale
     *  1.0; scaled down with --scale (floor 1000) so short
     *  smoke-test traces keep a measured region after warmup. */
    static constexpr uint64_t warmupBranchesFullScale = 50000;

    WarmupCache(std::string cache_dir, std::string suite_name,
                double trace_scale)
        : dir(std::move(cache_dir)), suite(std::move(suite_name)),
          scale(trace_scale)
    {
    }

    /** The effective warmup length for this cache's --scale. */
    uint64_t
    warmupLength() const
    {
        const double scaled =
            static_cast<double>(warmupBranchesFullScale) * scale;
        return std::max<uint64_t>(1000, static_cast<uint64_t>(scaled));
    }

    /**
     * The prepare hook for one job: warm-or-restore as described
     * above. @p label must uniquely identify the predictor
     * configuration within the suite; an empty label keys on
     * predictor.name() instead. @p warm_options carries the job's
     * evaluator knobs (updateDelay in particular) so warmup trains
     * under the same regime the measurement will use.
     */
    std::function<void(TraceSource &, BranchPredictor &)>
    hook(const std::string &trace_name, const std::string &label,
         EvalOptions warm_options) const
    {
        // Measurement-only knobs must not leak into the warmup pass.
        warm_options.telemetry = nullptr;
        warm_options.telemetryInterval = 0;
        warm_options.collectPerBranch = false;
        warm_options.checkpointPath.clear();
        warm_options.checkpointInterval = 0;
        warm_options.resume = false;
        warm_options.maxBranches = warmupLength();

        return [cache = *this, trace_name, label, warm_options](
                   TraceSource &source, BranchPredictor &predictor) {
            const std::string key =
                label.empty() ? predictor.name() : label;
            const std::string path =
                cache.snapshotPath(trace_name, key);
            std::ifstream probe(path, std::ios::binary);
            if (probe.good()) {
                probe.close();
                telemetry::ScopedSpan span("bench", "warmup.restore");
                restoreWarmup(path, key, source, predictor);
            } else {
                telemetry::ScopedSpan span("bench", "warmup.run");
                runWarmup(path, key, warm_options, source, predictor);
            }
        };
    }

  private:
    static constexpr const char *envelopeKind = "bench-warmup";

    /** Filesystem-safe cache file name: labels carry spaces and
     *  punctuation, so the key is hashed. */
    std::string
    snapshotPath(const std::string &trace_name,
                 const std::string &label) const
    {
        std::ostringstream key;
        key << suite << "|" << trace_name << "|" << label << "|"
            << scale << "|" << warmupLength();
        const std::string k = key.str();
        const uint64_t h = fnv1a64(
            reinterpret_cast<const uint8_t *>(k.data()), k.size());
        std::ostringstream name;
        name << dir << "/warm_" << std::hex << std::setw(16)
             << std::setfill('0') << h << ".snap";
        return name.str();
    }

    static void
    runWarmup(const std::string &path, const std::string &label,
              const EvalOptions &warm_options, TraceSource &source,
              BranchPredictor &predictor)
    {
        const EvalResult warm =
            evaluate(source, predictor, warm_options);
        // The evaluator never reads past its maxBranches cutoff, so
        // the source sits exactly past the records accounted for in
        // the branch counters (plus any policy-skipped records).
        const uint64_t records = warm.condBranches +
                                 warm.otherBranches +
                                 warm.recordsSkipped;

        StateSink sink;
        sink.u64(records);
        sink.str(label);
        sink.str(predictor.name());
        sink.blob(serializePredictorBody(predictor));
        std::ostringstream os;
        writeEnvelope(os, envelopeKind, sink.take());
        const std::string bytes = os.str();
        writeFileAtomic(path, std::vector<uint8_t>(bytes.begin(),
                                                   bytes.end()));
    }

    static void
    restoreWarmup(const std::string &path, const std::string &label,
                  TraceSource &source, BranchPredictor &predictor)
    {
        const std::vector<uint8_t> bytes = readFileBytes(path);
        std::istringstream is(std::string(bytes.begin(), bytes.end()));
        const std::vector<uint8_t> payload =
            readEnvelope(is, envelopeKind);
        StateSource src(payload);
        const uint64_t records = src.u64();
        const std::string storedLabel = src.str();
        const std::string storedName = src.str();
        if (storedLabel != label || storedName != predictor.name()) {
            throw TraceIoError(
                "warmup snapshot " + path + " was taken for '" +
                storedLabel + "' (predictor '" + storedName +
                "'), not '" + label + "' (predictor '" +
                predictor.name() +
                "'); warmup snapshots restore only into an "
                "identically-configured predictor — delete the "
                "--warmup-snapshot directory after configuration "
                "changes");
        }
        const std::vector<uint8_t> body = src.blob();
        src.requireExhausted("bench-warmup snapshot");
        restorePredictorBody(predictor, body);

        // Reposition the source where the warmup left it: seekable
        // sources (v2 trace archives) jump there, the rest
        // fast-forward in bulk.
        if (source.seekToRecord(records))
            return;
        std::vector<BranchRecord> block(4096);
        uint64_t skipped = 0;
        while (skipped < records) {
            const size_t want = static_cast<size_t>(
                std::min<uint64_t>(block.size(), records - skipped));
            const size_t got = source.nextBlock(block.data(), want);
            if (got == 0) {
                throw TraceIoError(
                    "cannot fast-forward past warmup: " +
                    source.name() + " ended after " +
                    std::to_string(skipped) +
                    " records, warmup snapshot consumed " +
                    std::to_string(records));
            }
            skipped += got;
        }
    }

    std::string dir;
    std::string suite;
    double scale;
};

/** One archived evaluation: the result plus its wall time. */
struct BenchRun
{
    EvalResult result;
    double seconds = 0.0;

    /** Predictor budget, StorageReport::totalBits() (runSuite only). */
    uint64_t storageBits = 0;

    /** The job raised a BfbpError; result may be partial and error
     *  carries the diagnostic (runSuite only — evaluateRun lets the
     *  exception propagate to guardedMain). */
    bool failed = false;
    std::string error;
};

/**
 * Collects telemetry::RunRecords across a bench's evaluations and
 * writes them as one bfbp-telemetry-v1 JSON document.
 *
 * When the options carry no --json path the archive is inert:
 * evaluateRun() degenerates to a timed evaluate() with a null
 * telemetry pointer.
 */
class RunArchive
{
  public:
    /** Conditional branches between mid-trace evaluator checkpoint
     *  writes under --checkpoint-dir: frequent enough that a killed
     *  full-scale run loses at most a couple of seconds of work,
     *  rare enough to be invisible in the run time. */
    static constexpr uint64_t midTraceCheckpointInterval = 200000;

    RunArchive(std::string suite_name, const Options &options)
        : suite(std::move(suite_name)), opts(options)
    {
        if (!opts.traceOut.empty()) {
            auto &session = telemetry::TraceSession::instance();
            session.start(suite);
            session.setCurrentThreadName("main");
        }
    }

    /** Archive and JSON output active? */
    bool enabled() const { return !opts.jsonPath.empty(); }

    /**
     * Evaluates @p predictor over @p source and, when active,
     * archives the run under @p trace_name. Extra evaluator knobs
     * (updateDelay, maxBranches) can be passed via @p eval_options;
     * its telemetry fields are overwritten. @p predictor_label
     * replaces predictor.name() in the record (for benches whose
     * configurations share one label).
     */
    BenchRun
    evaluateRun(const std::string &trace_name, TraceSource &source,
                BranchPredictor &predictor, EvalOptions eval_options = {},
                const std::string &predictor_label = "")
    {
        BenchRun run;
        // Not recorded in the archived options: lookahead never
        // changes results, and the CI determinism gate byte-diffs
        // --lookahead N vs 0 documents.
        if (opts.lookahead != 0)
            eval_options.lookahead = opts.lookahead;
        if (!enabled()) {
            eval_options.telemetry = nullptr;
            telemetry::ScopedTimer timer(nullptr, "bench");
            run.result = evaluate(source, predictor, eval_options);
            run.seconds = timer.elapsedSeconds();
            return run;
        }

        telemetry::RunRecord record;
        record.traceName = trace_name;
        record.predictorName = predictor_label.empty()
            ? predictor.name() : predictor_label;
        eval_options.telemetryInterval = opts.interval;
        eval_options.telemetry = &record.data;
        eval_options.collectPerBranch |= opts.h2pReport;
        run.result = evaluate(source, predictor, eval_options);

        const EvalResult &res = run.result;
        record.instructions = res.instructions;
        record.condBranches = res.condBranches;
        record.otherBranches = res.otherBranches;
        record.mispredictions = res.mispredictions;
        record.mpki = res.mpki();
        record.mispredictionRate = res.mispredictionRate();
        record.wallSeconds = record.data.gaugeValue("eval.seconds");
        record.branchesPerSecond =
            record.data.gaugeValue("eval.per_second");
        record.storageBits = predictor.storage().totalBits();
        record.options["scale"] = formatDouble(opts.scale);
        record.options["interval"] = std::to_string(opts.interval);
        if (eval_options.updateDelay != 0) {
            record.options["update_delay"] =
                std::to_string(eval_options.updateDelay);
        }
        if (eval_options.maxBranches != 0) {
            record.options["max_branches"] =
                std::to_string(eval_options.maxBranches);
        }
        run.seconds = record.wallSeconds;
        run.storageBits = record.storageBits;
        attachH2p(record, run.result);
        runs.push_back(std::move(record));
        return run;
    }

    /**
     * Submits a whole (trace, predictor) matrix to a SuiteRunner
     * pool of --jobs workers and archives every outcome in
     * submission order, so tables, CSV rows and the JSON document
     * are byte-identical to a serial run (timing excepted).
     *
     * A job that fails (BfbpError in its factories or evaluation)
     * does not abort the suite: its BenchRun carries failed=true and
     * the diagnostic (also archived as an "error" note and echoed to
     * stderr), and exitCode() turns nonzero. Callers finish their
     * mains with `return archive.exitCode();`.
     */
    std::vector<BenchRun>
    runSuite(std::vector<SuiteJob> jobs)
    {
        std::optional<telemetry::ScopedSpan> setupSpan;
        setupSpan.emplace("bench", "suite.setup");
        for (auto &job : jobs) {
            job.collectTelemetry = enabled();
            job.options.telemetryInterval = opts.interval;
            job.options.collectPerBranch |= opts.h2pReport;
            if (opts.lookahead != 0)
                job.options.lookahead = opts.lookahead;
        }
        if (!opts.dumpTracesDir.empty())
            dumpTraces(jobs);
        if (!opts.warmupDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(opts.warmupDir, ec);
            if (ec) {
                throw TraceIoError(
                    "cannot create --warmup-snapshot directory '" +
                    opts.warmupDir + "': " + ec.message());
            }
            const WarmupCache cache(opts.warmupDir, suite, opts.scale);
            for (auto &job : jobs) {
                // The label keys the cache; jobs without one (single-
                // config benches) key on the predictor name via the
                // stored-name cross-check with an empty label.
                job.prepare = cache.hook(job.traceName,
                                         job.predictorLabel,
                                         job.options);
            }
        }
        SuiteRunner runner(opts.jobs);
        SuiteCheckpointOptions ckpt;
        if (!opts.checkpointDir.empty()) {
            // Each bench checkpoints into its own subdirectory so one
            // --checkpoint-dir serves a multi-bench campaign without
            // job indices colliding across suites.
            ckpt.dir = opts.checkpointDir + "/" + suite;
            ckpt.interval = midTraceCheckpointInterval;
            ckpt.resume = opts.resume;
        }
        SuiteHeartbeatOptions heartbeat;
        heartbeat.path = opts.heartbeatPath;
        heartbeat.intervalSeconds = opts.heartbeatInterval;
        setupSpan.reset();

        std::vector<SuiteOutcome> outcomes;
        {
            telemetry::ScopedSpan runSpan("bench", "suite " + suite);
            outcomes = runner.run(jobs, ckpt, heartbeat);
        }

        std::vector<BenchRun> out;
        out.reserve(outcomes.size());
        for (size_t i = 0; i < outcomes.size(); ++i)
            out.push_back(absorb(jobs[i], std::move(outcomes[i])));
        return out;
    }

    const std::vector<telemetry::RunRecord> &records() const
    {
        return runs;
    }

    /** 2 when any runSuite job failed, else 0. */
    int exitCode() const { return failedJobs == 0 ? 0 : 2; }

    /**
     * End-of-main sequence, in one call: writes the JSON document,
     * exports and disarms the span trace (--trace-out), prints the
     * H2P CSV to stdout when --h2p-report rides with --csv, repeats
     * every job failure on stderr (per-job diagnostics scroll away in
     * long runs; this summary is the last thing printed), and returns
     * the process exit code. Benches end with
     * `return archive.finish();`.
     */
    int
    finish() const
    {
        write();
        if (!opts.traceOut.empty()) {
            auto &session = telemetry::TraceSession::instance();
            session.stop();
            session.writeFile(opts.traceOut);
            std::cerr << "wrote " << session.eventCount()
                      << " trace events to " << opts.traceOut << "\n";
        }
        if (opts.h2pReport && opts.csv)
            telemetry::writeH2pCsv(std::cout, runs);
        if (!failures.empty()) {
            std::cerr << failures.size() << " suite job"
                      << (failures.size() == 1 ? "" : "s")
                      << " failed:\n";
            for (const std::string &f : failures)
                std::cerr << "  " << f << "\n";
        }
        return exitCode();
    }

    /**
     * Writes the document to the --json path (no-op when inactive).
     * Call once at the end of main.
     *
     * @throws TraceIoError when the file cannot be opened or the
     *         stream fails after serialization (full disk, quota) —
     *         guardedMain turns that into the usual exit-2
     *         diagnostic instead of reporting a truncated file as
     *         written.
     */
    void
    write() const
    {
        if (!enabled())
            return;
        std::ofstream os(opts.jsonPath);
        if (!os) {
            throw TraceIoError("cannot open --json file for writing: " +
                               opts.jsonPath);
        }
        telemetry::writeRunsJson(os, suite, runs);
        os.flush();
        if (os.fail()) {
            throw TraceIoError("write failed for --json file " +
                               opts.jsonPath + " (disk full?)");
        }
        std::cerr << "wrote " << runs.size() << " run record"
                  << (runs.size() == 1 ? "" : "s") << " to "
                  << opts.jsonPath << "\n";
    }

  private:
    /**
     * --dump-traces: archive each distinct trace of the suite once
     * under the dump directory (".trace" files named after the
     * trace), in the container --trace-v2 selects. Runs before the
     * evaluations; a dump failure aborts the bench rather than
     * leaving a half-written archive unnoticed (the writer's atomic
     * rename means no partial file survives either way).
     */
    void
    dumpTraces(const std::vector<SuiteJob> &jobs)
    {
        std::error_code ec;
        std::filesystem::create_directories(opts.dumpTracesDir, ec);
        if (ec) {
            throw TraceIoError("cannot create --dump-traces directory '" +
                               opts.dumpTracesDir + "': " + ec.message());
        }
        const TraceFormat format =
            opts.traceV2 ? TraceFormat::V2 : TraceFormat::V1;
        std::vector<std::string> done;
        for (const auto &job : jobs) {
            if (std::find(done.begin(), done.end(), job.traceName) !=
                done.end())
                continue;
            done.push_back(job.traceName);
            telemetry::ScopedSpan span("bench",
                                       "dump " + job.traceName);
            const std::string path =
                opts.dumpTracesDir + "/" + job.traceName + ".trace";
            auto source = job.makeSource();
            TraceFileWriter writer(path, 64 * 1024, format);
            BranchRecord r;
            while (source->next(r))
                writer.append(r);
            writer.close();
        }
    }

    /** Converts one suite outcome into a BenchRun, archiving the
     *  RunRecord when --json is active (mirrors evaluateRun). */
    BenchRun
    absorb(const SuiteJob &job, SuiteOutcome &&outcome)
    {
        BenchRun run;
        run.result = std::move(outcome.result);
        run.seconds = outcome.seconds;
        run.storageBits = outcome.storageBits;
        run.failed = outcome.failed;
        run.error = outcome.error;
        if (outcome.failed) {
            ++failedJobs;
            const std::string who = job.traceName + "/" +
                (outcome.predictorName.empty()
                     ? "<unconstructed predictor>"
                     : outcome.predictorName);
            failures.push_back(who + ": " + outcome.error);
            std::cerr << "suite job failed: " << who << ": "
                      << outcome.error << "\n";
        }
        if (!enabled())
            return run;

        telemetry::RunRecord record;
        record.traceName = job.traceName;
        record.predictorName = outcome.predictorName;
        record.data = std::move(outcome.data);

        const EvalResult &res = run.result;
        record.instructions = res.instructions;
        record.condBranches = res.condBranches;
        record.otherBranches = res.otherBranches;
        record.mispredictions = res.mispredictions;
        record.mpki = res.mpki();
        record.mispredictionRate = res.mispredictionRate();
        record.wallSeconds = record.data.gaugeValue("eval.seconds");
        record.branchesPerSecond =
            record.data.gaugeValue("eval.per_second");
        record.storageBits = outcome.storageBits;
        record.options["scale"] = formatDouble(opts.scale);
        record.options["interval"] = std::to_string(opts.interval);
        if (job.options.updateDelay != 0) {
            record.options["update_delay"] =
                std::to_string(job.options.updateDelay);
        }
        if (job.options.maxBranches != 0) {
            record.options["max_branches"] =
                std::to_string(job.options.maxBranches);
        }
        if (outcome.failed)
            record.data.note("error", outcome.error);
        attachH2p(record, run.result);
        runs.push_back(std::move(record));
        return run;
    }

    /** Builds the per-run H2P report from the evaluator's per-branch
     *  profiles when --h2p-report is active. */
    void
    attachH2p(telemetry::RunRecord &record, const EvalResult &res) const
    {
        if (!opts.h2pReport)
            return;
        std::vector<telemetry::H2pInput> rows;
        rows.reserve(res.perBranch.size());
        for (const BranchProfile &prof : res.perBranch) {
            telemetry::H2pInput row;
            row.pc = prof.pc;
            row.executions = prof.executions;
            row.taken = prof.taken;
            row.transitions = prof.transitions;
            row.mispredictions = prof.mispredictions;
            rows.push_back(row);
        }
        record.h2p = telemetry::buildH2pReport(
            std::move(rows), res.instructions, opts.h2pTop);
    }

    static std::string
    formatDouble(double value)
    {
        std::ostringstream os;
        os << value;
        return os.str();
    }

    std::string suite;
    const Options &opts;
    std::vector<telemetry::RunRecord> runs;
    uint64_t failedJobs = 0;
    std::vector<std::string> failures;
};

/** Prints a right-aligned numeric cell. */
inline std::string
cell(double value, int precision = 3)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

/** Prints a header banner for a bench. */
inline void
banner(const std::string &title)
{
    std::cout << "==== " << title << " ====\n";
}

} // namespace bfbp::bench

#endif // BFBP_BENCH_COMMON_HPP
