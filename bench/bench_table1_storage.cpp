/**
 * @file
 * Table I: itemized storage budget of the 10-table BF-TAGE, printed
 * next to the paper's numbers, plus the budgets of every predictor
 * configuration used in the evaluation.
 *
 * Paper total: 51,100 bytes for BF-TAGE-10 (tables + BST + RS +
 * unfiltered history); the conventional 10-table ISL-TAGE without
 * side components is quoted at 51,072 bytes.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "predictors/sizing.hpp"
#include "predictors/tage.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_table1_storage", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv, "Table I: storage budgets (no traces run)");
    // No predictor runs here; --json still writes a (runs-empty)
    // document so the harness can pass the flag uniformly.
    bench::RunArchive archive("table1_storage", opts);

    bench::banner("Table I: BF-TAGE (10 tagged tables) storage");
    {
        auto bf = makeBfTageCore(10);
        std::cout << bf->storage() << "\n";
        std::cout << "paper Table I total: 51100 bytes "
                  << "(our unfiltered queue is 2048 entries where the "
                  << "paper counts 1536; structure otherwise "
                  << "identical)\n\n";
    }

    bench::banner("Baseline: conventional TAGE (10 tagged tables)");
    {
        TagePredictor conv(conventionalTageConfig(10));
        std::cout << conv.storage() << "\n";
        std::cout << "paper quote: 51072 bytes without loop/SC/IUM\n\n";
    }

    bench::banner("All evaluation configurations");
    std::cout << std::left << std::setw(18) << "predictor"
              << std::right << std::setw(12) << "bytes"
              << std::setw(10) << "KiB" << "\n";
    for (const auto &spec :
         {std::string("pwl"), std::string("oh-snap"),
          std::string("bf-neural"), std::string("tage-15"),
          std::string("isl-tage-10"), std::string("bf-isl-tage-10"),
          std::string("isl-tage-4"), std::string("bf-isl-tage-4"),
          std::string("isl-tage-7"), std::string("bf-isl-tage-7")}) {
        // Fast mode changes arithmetic, never table geometry, so the
        // budgets must be identical under --fast; printing them under
        // the flag makes that auditable.
        auto p = createPredictor(opts.modeSpec(spec));
        const auto bytes = p->storage().totalBytes();
        std::cout << std::left << std::setw(18) << spec << std::right
                  << std::setw(12) << bytes << std::setw(10)
                  << bench::cell(static_cast<double>(bytes) / 1024.0, 1)
                  << "\n";
    }
    return archive.finish();
    });
}
