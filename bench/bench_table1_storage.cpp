/**
 * @file
 * Table I: itemized storage budget of the 10-table BF-TAGE, printed
 * next to the paper's numbers, plus the budgets of every predictor
 * configuration used in the evaluation.
 *
 * Paper total: 51,100 bytes for BF-TAGE-10 (tables + BST + RS +
 * unfiltered history); the conventional 10-table ISL-TAGE without
 * side components is quoted at 51,072 bytes.
 */

#include <iostream>

#include "bench_common.hpp"
#include "core/factory.hpp"
#include "predictors/isl_tage.hpp"
#include "predictors/sizing.hpp"
#include "predictors/tage.hpp"
#include "util/arena.hpp"

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_table1_storage", [&]() -> int {
    using namespace bfbp;
    const auto opts = bench::Options::parse(
        argc, argv, "Table I: storage budgets (no traces run)");
    // No predictor runs here; --json still writes a (runs-empty)
    // document so the harness can pass the flag uniformly.
    bench::RunArchive archive("table1_storage", opts);

    bench::banner("Table I: BF-TAGE (10 tagged tables) storage");
    {
        auto bf = makeBfTageCore(10);
        std::cout << bf->storage() << "\n";
        std::cout << "paper Table I total: 51100 bytes "
                  << "(our unfiltered queue is 2048 entries where the "
                  << "paper counts 1536; structure otherwise "
                  << "identical)\n\n";
    }

    bench::banner("Baseline: conventional TAGE (10 tagged tables)");
    {
        TagePredictor conv(conventionalTageConfig(10));
        std::cout << conv.storage() << "\n";
        std::cout << "paper quote: 51072 bytes without loop/SC/IUM\n\n";
    }

    bench::banner("All evaluation configurations");
    std::cout << std::left << std::setw(18) << "predictor"
              << std::right << std::setw(12) << "bytes"
              << std::setw(10) << "KiB" << "\n";
    for (const auto &spec :
         {std::string("pwl"), std::string("oh-snap"),
          std::string("bf-neural"), std::string("tage-15"),
          std::string("isl-tage-10"), std::string("bf-isl-tage-10"),
          std::string("isl-tage-4"), std::string("bf-isl-tage-4"),
          std::string("isl-tage-7"), std::string("bf-isl-tage-7")}) {
        // Fast mode changes arithmetic, never table geometry, so the
        // budgets must be identical under --fast; printing them under
        // the flag makes that auditable.
        auto p = createPredictor(opts.modeSpec(spec));
        const auto bytes = p->storage().totalBytes();
        std::cout << std::left << std::setw(18) << spec << std::right
                  << std::setw(12) << bytes << std::setw(10)
                  << bench::cell(static_cast<double>(bytes) / 1024.0, 1)
                  << "\n";
    }
    /*
     * Cross-check: the modeled hardware budget (StorageReport bits)
     * against the bytes the packed tables actually occupy in memory
     * (the cache-line-aligned arenas of util/arena.hpp). The modeled
     * number counts ctr+tag+u bits; the resident number counts the
     * 4-byte packed words, bit-packed bimodal planes and cache-line
     * padding — so resident/modeled is the in-memory overhead ratio
     * of the layout. Three fences fail the bench (exit 2) on a
     * layout regression:
     *   1. sizeof(PackedTaggedEntry) must stay 4 (a revert to the
     *      padded 6-byte AoS entry is the regression this PR fixed);
     *   2. each arena's byte count must equal the footprint of the
     *      packed geometry replayed through an ArenaPlan here;
     *   3. the overhead ratio must stay under a per-component
     *      ceiling chosen between the packed layout's ratio and the
     *      unpacked one's.
     * (LoopPredictor::Entry is private; its 8-byte packing is pinned
     * by a static_assert in loop_predictor.hpp instead.)
     */
    bench::banner("Packed-layout cross-check (modeled bits vs "
                  "resident bytes)");
    bool layoutOk = true;

    std::cout << "sizeof(PackedTaggedEntry): "
              << sizeof(PackedTaggedEntry) << " bytes (want 4)\n\n";
    if (sizeof(PackedTaggedEntry) != 4)
        layoutOk = false;

    std::cout << std::left << std::setw(22) << "component" << std::right
              << std::setw(14) << "modeled_bits" << std::setw(16)
              << "resident_bytes" << std::setw(10) << "ratio"
              << std::setw(9) << "ceiling" << std::setw(7) << "ok"
              << "\n";
    const auto row = [&](const std::string &what, uint64_t modeled_bits,
                         uint64_t resident_bytes,
                         uint64_t expected_bytes, double ceiling) {
        const double ratio = static_cast<double>(resident_bytes) * 8.0 /
            static_cast<double>(modeled_bits);
        const bool ok =
            resident_bytes == expected_bytes && ratio <= ceiling;
        std::cout << std::left << std::setw(22) << what << std::right
                  << std::setw(14) << modeled_bits << std::setw(16)
                  << resident_bytes << std::setw(10)
                  << bench::cell(ratio, 2) << std::setw(9)
                  << bench::cell(ceiling, 1) << std::setw(7)
                  << (ok ? "yes" : "NO") << "\n";
        if (resident_bytes != expected_bytes)
            std::cout << "  LAYOUT REGRESSION: arena holds "
                      << resident_bytes << " bytes but the packed "
                      << "geometry replays to " << expected_bytes
                      << "\n";
        if (!ok)
            layoutOk = false;
    };

    // TAGE cores: modeled = per-entry ctr+u+tag bits plus the 1-bit
    // bimodal planes; expected resident replays the constructor's
    // exact reserve sequence (tagged tables, pred plane, hyst plane).
    const auto checkCore = [&](const std::string &what,
                               const TageConfig &tcfg,
                               const TageBase &core) {
        const size_t predEntries = size_t{1} << tcfg.logBase;
        const size_t hystEntries = size_t{1}
            << (tcfg.logBase - tcfg.hystShift);
        uint64_t modeled = predEntries + hystEntries;
        ArenaPlan plan;
        for (size_t t = 0; t < tcfg.numTables(); ++t) {
            const size_t entries = size_t{1} << tcfg.logSizes[t];
            modeled += entries *
                (tcfg.ctrBits + tcfg.uBits + tcfg.tagBits[t]);
            plan.reserve<PackedTaggedEntry>(entries);
        }
        plan.reserve<uint64_t>((predEntries + 63) / 64);
        plan.reserve<uint64_t>((hystEntries + 63) / 64);
        // Packed cores sit near 2.4x (32-bit words over ~13 modeled
        // bits/entry); the pre-packing 6-byte AoS layout reads ~3.4x.
        row(what, modeled, core.residentTableBytes(), plan.bytes(),
            3.0);
    };

    {
        TagePredictor conv10(conventionalTageConfig(10));
        TagePredictor conv15(conventionalTageConfig(15));
        checkCore("tage-10 tables", conv10.config(), conv10);
        checkCore("tage-15 tables", conv15.config(), conv15);
    }
    {
        auto bf = makeBfTageCore(10);
        checkCore("bf-tage-10 tables", bf->config(), *bf);
    }

    // ISL-TAGE statistical corrector: modeled = scCounterBits per
    // weight; resident = the flattened int16 rows. The pre-packing
    // vector-of-vectors of 6-byte SignedSatCounter cells read 8x.
    {
        const IslConfig icfg; // isl-tage defaults (3 tables x 2^10).
        IslTagePredictor isl(std::make_unique<TagePredictor>(
            conventionalTageConfig(10)));
        const size_t weights = icfg.scHistoryLengths.size() *
            (size_t{1} << icfg.scLogEntries);
        ArenaPlan plan;
        plan.reserve<int16_t>(weights);
        row("isl-tage-10 SC rows", weights * icfg.scCounterBits,
            isl.scResidentBytes(), plan.bytes(), 4.0);
    }

    if (!layoutOk)
        std::cout << "\npacked-layout cross-check FAILED\n";
    const int rc = archive.finish();
    return layoutOk ? rc : 2;
    });
}
