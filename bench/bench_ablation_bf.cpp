/**
 * @file
 * Ablations of the Bias-Free design choices DESIGN.md calls out,
 * on a fixed subset of discriminating traces:
 *
 *  - fhist source: filtered-path fold (default) vs raw-history fold
 *    vs none (Sec. IV-A interpretation; see DESIGN.md item 2).
 *  - RS depth sweep (the h - ht split of Sec. IV).
 *  - Bias detection: dynamic 2-bit FSM vs probabilistic 3-bit
 *    counters vs static profiling oracle (Sec. VI-D, SERV traces).
 *  - Idealized Algorithm 1 (depth-indexed 2-D table) vs the
 *    practical 1-D implementation (Sec. IV-B2 relearning argument).
 *  - IUM under delayed update (inert at delay 0 by construction).
 */

#include <functional>

#include "bench_common.hpp"
#include "core/bf_neural_ideal.hpp"
#include "core/factory.hpp"
#include "sim/evaluator.hpp"

namespace
{

using namespace bfbp;

/** Average MPKI of @p make over @p traces, evaluated as one
 *  suite-runner batch (the factory runs on worker threads and must
 *  only read its captures). */
double
avgMpkiOver(bench::RunArchive &archive, const std::string &label,
            const std::vector<tracegen::TraceRecipe> &traces,
            double scale,
            const std::function<std::unique_ptr<BranchPredictor>()> &make,
            uint64_t update_delay = 0)
{
    std::vector<SuiteJob> jobs;
    for (const auto &recipe : traces) {
        SuiteJob job;
        job.traceName = recipe.name;
        job.predictorLabel = label;
        job.makeSource = [recipe, scale] {
            return tracegen::makeSource(recipe, scale);
        };
        job.makePredictor = make;
        job.options.updateDelay = update_delay;
        jobs.push_back(std::move(job));
    }
    const auto runs = archive.runSuite(std::move(jobs));
    double sum = 0.0;
    for (const auto &run : runs)
        sum += run.result.mpki();
    return sum / static_cast<double>(traces.size());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    return bfbp::bench::guardedMain("bench_ablation_bf", [&]() -> int {
    using namespace bfbp;
    auto opts = bench::Options::parse(
        argc, argv, "BF design-choice ablations");
    if (opts.traces.empty()) {
        // Scene-heavy + local-history + server: the discriminators.
        opts.traces = {"SPEC02", "SPEC03", "SPEC09", "SPEC18",
                       "SPEC07", "MM5", "SERV3", "INT4"};
    }
    const auto traces = opts.selectedTraces();
    const double scale = opts.scale;
    bench::RunArchive archive("ablation_bf", opts);

    auto report = [&](const std::string &label, double mpki) {
        std::cout << std::left << std::setw(34) << label << std::right
                  << bench::cell(mpki) << "\n";
        if (opts.csv)
            std::cout << "CSV," << label << "," << bench::cell(mpki)
                      << "\n";
    };

    bench::banner("fhist source (BF-Neural)");
    for (auto [label, mode] :
         {std::pair{"filtered-path fold (default)",
                    BfNeuralConfig::FoldMode::FilteredPath},
          std::pair{"raw-history fold",
                    BfNeuralConfig::FoldMode::RawHistory},
          std::pair{"no fold", BfNeuralConfig::FoldMode::None}}) {
        BfNeuralConfig cfg;
        cfg.foldMode = mode;
        report(label, avgMpkiOver(archive, label, traces, scale, [&] {
            return makeBfNeural(cfg);
        }));
    }

    bench::banner("recency stack depth (BF-Neural)");
    for (unsigned depth : {16u, 32u, 48u, 64u}) {
        BfNeuralConfig cfg;
        cfg.rsDepth = depth;
        const std::string label = "rsDepth " + std::to_string(depth);
        report(label, avgMpkiOver(archive, label, traces, scale,
                                  [&] { return makeBfNeural(cfg); }));
    }

    bench::banner("bias detection (BF-Neural)");
    {
        BfNeuralConfig dyn;
        report("dynamic 2-bit FSM",
               avgMpkiOver(archive, "dynamic 2-bit FSM", traces, scale,
                           [&] { return makeBfNeural(dyn); }));
        BfNeuralConfig prob;
        prob.probabilisticBst = true;
        report("probabilistic 3-bit counters",
               avgMpkiOver(archive, "probabilistic 3-bit counters",
                           traces, scale,
                           [&] { return makeBfNeural(prob); }));
        // Static profiling oracle (Sec. VI-D): profile each trace
        // first, then predict with perfect classification. The
        // profiling pass runs inside the worker's predictor factory,
        // so it parallelizes with everything else.
        std::vector<SuiteJob> oracleJobs;
        for (const auto &recipe : traces) {
            SuiteJob job;
            job.traceName = recipe.name;
            job.predictorLabel = "static profiling oracle";
            job.makeSource = [recipe, scale] {
                return tracegen::makeSource(recipe, scale);
            };
            job.makePredictor = [recipe, scale] {
                auto profSrc = tracegen::makeSource(recipe, scale);
                auto oracle = std::make_shared<BiasOracle>(
                    BiasOracle::profile(*profSrc));
                BfNeuralConfig cfg;
                cfg.oracle = oracle;
                return makeBfNeural(cfg);
            };
            oracleJobs.push_back(std::move(job));
        }
        const auto oracleRuns =
            archive.runSuite(std::move(oracleJobs));
        double sum = 0.0;
        for (const auto &run : oracleRuns)
            sum += run.result.mpki();
        report("static profiling oracle",
               sum / static_cast<double>(traces.size()));
    }

    bench::banner("Algorithm 1 (idealized) vs practical");
    report("bf-neural (practical, 1-D Wrs)",
           avgMpkiOver(archive, "bf-neural (practical, 1-D Wrs)",
                       traces, scale, [] { return makeBfNeural(); }));
    report("bf-neural-ideal (2-D by RS depth)",
           avgMpkiOver(archive, "bf-neural-ideal (2-D by RS depth)",
                       traces, scale, [] {
                           return std::make_unique<
                               BfNeuralIdealPredictor>();
                       }));

    bench::banner("IUM under delayed update (BF-ISL-TAGE-10)");
    for (uint64_t delay : {0ull, 32ull}) {
        for (bool ium : {false, true}) {
            IslConfig isl;
            isl.useIum = ium;
            isl.label = "bf-isl-tage-10";
            const std::string label = "delay " + std::to_string(delay) +
                (ium ? " with IUM" : " without IUM");
            report(label,
                   avgMpkiOver(
                       archive, label, traces, scale,
                       [&] {
                           return std::make_unique<IslTagePredictor>(
                               makeBfTageCore(10), isl);
                       },
                       delay));
        }
    }
    return archive.finish();
    });
}
